"""The Bulk Communication Protocol (BCP) engine — the paper's contribution.

One :class:`BcpAgent` runs on every dual-radio node, sitting between the
routing layer and the two MACs (paper Section 3):

Sender side
    Data packets from the routing layer are buffered per next hop
    (:class:`~repro.core.buffer.BulkBuffer`).  When a next hop's buffer
    reaches the threshold ``α·s*``, the agent starts a wake-up handshake:
    a WAKEUP naming the burst size travels over the *low-power* radio
    (possibly multiple hops); the agent waits for the WAKEUP-ACK, resending
    on timeout.  Only on receiving the ACK does it wake its own high-power
    radio, assemble the allowed amount of data into high-power frames
    (:mod:`~repro.core.fragmentation`) and hand them to the 802.11 MAC.

Receiver side
    On a WAKEUP, the agent wakes its high-power radio and answers with a
    WAKEUP-ACK advertising how much it can accept (its free buffer space —
    receiver flow control; a full receiver stays silent).  It turns the
    radio back off once the advertised burst has arrived or after an idle
    timeout.  Reassembled packets that have reached their destination are
    delivered up; in-transit packets are re-buffered toward their own next
    hop, so multi-hop bulk forwarding emerges from the same per-hop logic.

Control messages always travel over the low-power radio; data always over
the high-power radio ("data messages are always sent by the high-power
radio" — the low-power data path is the paper's future work).

The optional DSR-style shortcut learning (Section 3) keeps the sender's
radio on briefly after a burst, listening promiscuously for its own packets
being forwarded; the farthest overheard forwarder becomes the next hop for
subsequent bursts.

Shared-spec contract (the flyweight pattern)
--------------------------------------------
At deployment scale, everything about a BCP node except its identity and
its live protocol state is *class* data, not *instance* data: every node
of the same (radio pairing, traffic class, MAC config) combination shares
one :class:`BcpConfig`, the same two routing tables, the same delivery
callback and the same address map.  :class:`BcpNodeSpec` bundles those
shared references into one immutable flyweight; fleet construction builds
a handful of specs (the paper scenarios need two: sink and non-sink) and
stamps out agents with :meth:`BcpAgent.from_spec`, so a 10k-node build
allocates 10k *mutable-state* shells rather than 10k copies of the full
configuration graph.

The contract has two sides:

* **Builders** must treat everything placed in a spec as immutable for
  the lifetime of the fleet: the spec is hashed into nothing and copied
  nowhere — mutating its ``config`` (or rebinding a routing table) after
  construction would change behaviour for every agent sharing it at
  once.
* **Agents** never write through the spec: all mutable per-node state
  lives on the agent itself (the buffer, stats counters, session tables)
  or in struct-of-arrays containers owned by the scenario (energy
  columns in a :class:`~repro.energy.meter.MeterBank`).

The historical one-node-at-a-time constructor signature remains for
tests and hand-built stacks; it simply wraps its arguments in a private
spec.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.buffer import BulkBuffer
from repro.core.config import BcpConfig
from repro.core.fragmentation import BurstFragment, assemble_burst
from repro.core.messages import (
    CONTROL_PAYLOAD_BITS,
    ControlEnvelope,
    Wakeup,
    WakeupAck,
    new_session_id,
)
from repro.mac.base import ContentionMac
from repro.mac.frames import Frame, FrameKind
from repro.net.packets import DataPacket
from repro.net.routing import RoutingError, RoutingLike
from repro.net.shortcut import ShortcutLearner
from repro.radio.radio import HighPowerRadio

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


@dataclasses.dataclass(slots=True)
class _SenderSession:
    """Sender-side handshake/transfer state for one next hop."""

    next_hop: int
    session_id: int
    ack_event: typing.Any = None
    allowed_bytes: float | None = None
    active: bool = True


@dataclasses.dataclass(slots=True)
class _ReceiverSession:
    """Receiver-side state for one bulk sender."""

    origin: int
    session_id: int
    expected_bytes: float
    received_bytes: float = 0.0
    fragments_seen: set = dataclasses.field(default_factory=set)
    fragments_total: int | None = None
    last_activity_s: float = 0.0
    active: bool = True


@dataclasses.dataclass(frozen=True, eq=False)
class BcpNodeSpec:
    """The shared immutable flyweight behind a fleet of :class:`BcpAgent`.

    One spec exists per node *class* — per (radio pairing, traffic class,
    MAC config) combination in a composed scenario — and is handed to
    :meth:`BcpAgent.from_spec` for every node of that class.  See the
    module docstring ("Shared-spec contract") for the immutability rules
    both sides must uphold.

    Attributes
    ----------
    sim:
        The simulation kernel (one per run, shared by construction).
    config:
        Protocol parameters; treated as frozen once placed here even
        though :class:`BcpConfig` is technically a mutable dataclass.
    low_routing / high_routing:
        The two networks' routing tables (already shared historically —
        routing state is per-deployment, not per-node).
    deliver:
        Sink-delivery callback for packets that reach their destination.
    address_map:
        Optional dual-radio address table (``None`` disables the lookup).
    """

    sim: "Simulator"
    config: BcpConfig
    low_routing: RoutingLike
    high_routing: RoutingLike
    deliver: typing.Callable[[DataPacket], None]
    address_map: typing.Any = None


class BcpStats:
    """Protocol counters exposed for evaluation and tests."""

    __slots__ = (
        "packets_submitted",
        "packets_buffered",
        "packets_dropped_buffer",
        "packets_unroutable",
        "packets_sent",
        "packets_lost_mac",
        "packets_received",
        "packets_delivered",
        "packets_sent_low",
        "wakeups_sent",
        "wakeup_retries",
        "acks_sent",
        "handshakes_started",
        "handshakes_failed",
        "bursts_completed",
        "receiver_timeouts",
        "control_forwarded",
    )

    def __init__(self) -> None:
        self.packets_submitted = 0
        self.packets_buffered = 0
        self.packets_dropped_buffer = 0
        self.packets_unroutable = 0
        self.packets_sent = 0
        self.packets_lost_mac = 0
        self.packets_received = 0
        self.packets_delivered = 0
        self.packets_sent_low = 0
        self.wakeups_sent = 0
        self.wakeup_retries = 0
        self.acks_sent = 0
        self.handshakes_started = 0
        self.handshakes_failed = 0
        self.bursts_completed = 0
        self.receiver_timeouts = 0
        self.control_forwarded = 0


class BcpAgent:
    """BCP protocol instance on one node.

    Parameters
    ----------
    sim:
        The simulation kernel.
    node_id:
        The owning node.
    config:
        Protocol parameters (:class:`BcpConfig`).
    low_mac / high_mac:
        The sensor and 802.11 MACs (already bound to their radios).
    high_radio:
        The managed high-power radio (BCP owns its on/off schedule).
    low_routing / high_routing:
        Routing tables of the two networks; control follows ``low_routing``,
        data follows ``high_routing`` (or a learned shortcut).
    deliver:
        Callback invoked with each :class:`DataPacket` whose final
        destination is this node.
    address_map:
        Optional dual-radio address table; when provided, the agent
        resolves the peer's high-power address before each handshake,
        mirroring a real implementation's lookup (Section 3).
    spec:
        Optional pre-built :class:`BcpNodeSpec`; when given it *is* the
        shared flyweight and the individual shared arguments are ignored
        in its favour (fleet builders pass it via :meth:`from_spec` so
        ten thousand agents share one spec object instead of carrying
        ten thousand argument tuples through construction).
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        config: BcpConfig,
        low_mac: ContentionMac,
        high_mac: ContentionMac,
        high_radio: HighPowerRadio,
        low_routing: RoutingLike,
        high_routing: RoutingLike,
        deliver: typing.Callable[[DataPacket], None],
        address_map: typing.Any = None,
        spec: BcpNodeSpec | None = None,
    ):
        if spec is None:
            spec = BcpNodeSpec(
                sim=sim,
                config=config,
                low_routing=low_routing,
                high_routing=high_routing,
                deliver=deliver,
                address_map=address_map,
            )
        #: The shared immutable flyweight (see the module docstring).
        self.spec = spec
        # Shared fields are re-exposed as direct attributes: the protocol
        # hot paths (submit, control forwarding) touch them per packet,
        # and one extra indirection per access costs more over a run than
        # the references cost at construction.
        self.sim = spec.sim
        self.node_id = node_id
        self.config = spec.config
        self.low_mac = low_mac
        self.high_mac = high_mac
        self.high_radio = high_radio
        self.low_routing = spec.low_routing
        self.high_routing = spec.high_routing
        self.deliver = spec.deliver
        self.address_map = spec.address_map
        self.buffer = BulkBuffer(spec.config.buffer_capacity_bytes)
        self.stats = BcpStats()
        self._sender_sessions: dict[int, _SenderSession] = {}
        self._receiver_sessions: dict[int, _ReceiverSession] = {}
        self._radio_holds = 0
        self._retry_scheduled: set[int] = set()
        #: Consecutive handshake failures per next hop, for exponential
        #: backoff (prevents wake-up retry storms from amplifying
        #: congestion on the low-power control network).
        self._handshake_failures: dict[int, int] = {}
        self.shortcuts: ShortcutLearner | None = None
        if config.shortcut_learning:
            self.shortcuts = ShortcutLearner(node_id, low_routing, high_routing)
            if config.shortcut_observation:
                high_radio.set_overhear_handler(self._on_overheard)
        low_mac.set_data_handler(self._on_low_frame)
        high_mac.set_data_handler(self._on_high_frame)

    @classmethod
    def from_spec(
        cls,
        spec: BcpNodeSpec,
        node_id: int,
        low_mac: ContentionMac,
        high_mac: ContentionMac,
        high_radio: HighPowerRadio,
    ) -> "BcpAgent":
        """Stamp out one agent of the node class ``spec`` describes.

        The flyweight constructor: everything shared comes from ``spec``,
        everything per-node (identity, the node's own MACs and radio)
        comes as arguments.  Fleet builders call this in a loop after
        building one spec per node class.
        """
        return cls(
            spec.sim,
            node_id,
            spec.config,
            low_mac,
            high_mac,
            high_radio,
            spec.low_routing,
            spec.high_routing,
            spec.deliver,
            spec.address_map,
            spec=spec,
        )

    # ------------------------------------------------------------------
    # Sender side: routing interface.
    # ------------------------------------------------------------------

    def submit(self, packet: DataPacket) -> None:
        """Accept a data packet from the routing layer (paper: "Sender Side:
        Interface to Routing").

        Packets destined for this node are delivered immediately; others are
        buffered toward their high-power next hop, possibly triggering a
        handshake.  With a ``max_delay_s`` budget configured, a deadline
        timer guards every buffered packet (the paper's delay-constrained
        future work).
        """
        self.stats.packets_submitted += 1
        if packet.dst == self.node_id:
            self.stats.packets_delivered += 1
            self.deliver(packet)
            return
        try:
            next_hop = self._data_next_hop(packet.dst)
        except RoutingError:
            # A partitioned source (the sink, or every relay toward it,
            # is dead this epoch) drops at ingestion — counted, never a
            # crash.  Unreachable without fault injection: scenario
            # construction validates sender connectivity up front.
            self.stats.packets_unroutable += 1
            return
        if self.buffer.push(next_hop, packet):
            self.stats.packets_buffered += 1
            if self.config.max_delay_s is not None:
                self._arm_deadline(next_hop, packet)
            self._check_threshold(next_hop)
        else:
            self.stats.packets_dropped_buffer += 1

    def _data_next_hop(self, dst: int) -> int:
        if self.shortcuts is not None:
            return self.shortcuts.next_hop(dst)
        return self.high_routing.next_hop(self.node_id, dst)

    def _check_threshold(self, next_hop: int) -> None:
        if next_hop in self._sender_sessions:
            return
        if self.buffer.bytes_for(next_hop) < self.config.threshold_bytes:
            return
        session = _SenderSession(next_hop=next_hop, session_id=new_session_id())
        self._sender_sessions[next_hop] = session
        self.stats.handshakes_started += 1
        self.sim.process(
            self._run_sender_session(session),
            name=f"bcp.{self.node_id}.tx.{next_hop}",
        )

    # ------------------------------------------------------------------
    # Sender side: handshake and bulk transfer.
    # ------------------------------------------------------------------

    def _run_sender_session(self, session: _SenderSession) -> typing.Generator:
        next_hop = session.next_hop
        config = self.config
        try:
            allowed = yield from self._handshake(session)
            if allowed is None:
                self.stats.handshakes_failed += 1
                failures = min(self._handshake_failures.get(next_hop, 0) + 1, 6)
                self._handshake_failures[next_hop] = failures
                backoff = config.handshake_backoff_s * (2 ** (failures - 1))
                self._schedule_retry(next_hop, backoff)
                return
            self._handshake_failures.pop(next_hop, None)
            # Section 3: the sender turns its radio on only upon the ACK.
            yield self.high_radio.wake()
            self._radio_holds += 1
            try:
                yield from self._transfer(session, allowed)
            finally:
                self._release_radio_hold()
        finally:
            self._sender_sessions.pop(next_hop, None)
        # More data may have accumulated meanwhile (or flow control may
        # have clamped the burst) — re-arm immediately.
        self._check_threshold(next_hop)

    def _handshake(self, session: _SenderSession) -> typing.Generator:
        """WAKEUP / WAKEUP-ACK exchange; returns allowed bytes or None."""
        config = self.config
        if self.address_map is not None:
            # Resolve the peer's high-power address (the mapping the paper
            # requires BCP to maintain); failure means the peer has no
            # high-power radio and bulk transfer is impossible.
            from repro.net.addressing import HIGH_INTERFACE

            if not self.address_map.has_interface(
                session.next_hop, HIGH_INTERFACE
            ):
                return None
        for attempt in range(1 + config.wakeup_retries):
            if attempt > 0:
                self.stats.wakeup_retries += 1
            burst = self.buffer.bytes_for(session.next_hop)
            if burst <= 0:
                return None
            wakeup = Wakeup(
                origin=self.node_id,
                target=session.next_hop,
                session_id=session.session_id,
                burst_bytes=int(burst),
            )
            session.ack_event = self.sim.event()
            self.stats.wakeups_sent += 1
            self._send_control(wakeup, session.next_hop)
            timeout = self.sim.timeout(config.wakeup_timeout_s)
            outcome = yield session.ack_event | timeout
            if session.ack_event in outcome:
                return typing.cast(float, session.ack_event.value)
        return None

    def _transfer(
        self, session: _SenderSession, allowed_bytes: float
    ) -> typing.Generator:
        """Send the allowed burst as high-power frames, stop-and-wait."""
        next_hop = session.next_hop
        budget = min(allowed_bytes, self.buffer.bytes_for(next_hop))
        packets = self.buffer.pop_up_to(next_hop, budget)
        if not packets:
            return
        fragments = assemble_burst(
            packets,
            session.session_id,
            self.node_id,
            self.config.frame_payload_bytes,
        )
        high_header_bits = self.high_radio.spec.header_bits
        for fragment in fragments:
            frame = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=next_hop,
                payload_bits=fragment.payload_bits,
                header_bits=high_header_bits,
                payload=fragment,
                require_ack=True,
            )
            ok = yield self.high_mac.send(frame)
            if ok:
                self.stats.packets_sent += len(fragment.packets)
            else:
                self.stats.packets_lost_mac += len(fragment.packets)
        self.stats.bursts_completed += 1
        if (
            self.shortcuts is not None
            and self.config.shortcut_observation
            and packets
        ):
            # Learning phase: stay awake to overhear our packets being
            # forwarded — but only until a shortcut for this destination
            # is known, so the listening cost is paid per route, not per
            # burst.
            destination = packets[0].dst
            if not self.shortcuts.has_shortcut(destination):
                self._radio_holds += 1
                self.sim.call_later(
                    self.config.receiver_idle_timeout_s,
                    self._release_radio_hold,
                )

    def _schedule_retry(self, next_hop: int, delay_s: float) -> None:
        if next_hop in self._retry_scheduled:
            return
        self._retry_scheduled.add(next_hop)

        def retry() -> None:
            self._retry_scheduled.discard(next_hop)
            self._check_threshold(next_hop)

        self.sim.call_later(delay_s, retry)

    # ------------------------------------------------------------------
    # Delay-constrained fallback (the paper's Section 5 future work).
    # ------------------------------------------------------------------

    def _arm_deadline(self, next_hop: int, packet: DataPacket) -> None:
        """Flush via the low-power radio if ``packet`` is still buffered
        when its delay budget expires (age measured from generation)."""
        budget = typing.cast(float, self.config.max_delay_s)
        remaining = max(0.0, packet.created_s + budget - self.sim.now)
        self.sim.call_later(
            remaining, self._deadline_expired, next_hop, packet.packet_id
        )

    def _deadline_expired(self, next_hop: int, packet_id: int) -> None:
        if not self.buffer.has_packet(next_hop, packet_id):
            return  # already shipped in a bulk session
        if next_hop in self._sender_sessions:
            return  # a bulk transfer is already on its way
        self._flush_via_low_radio(next_hop)

    def _flush_via_low_radio(self, next_hop: int) -> None:
        """Send everything buffered for ``next_hop`` as individual
        low-power data frames (immediate, no wake-up handshake)."""
        packets = self.buffer.pop_up_to(next_hop, float("inf"))
        header_bits = self.low_mac.radio.spec.header_bits
        for packet in packets:
            try:
                low_hop = self.low_routing.next_hop(self.node_id, packet.dst)
            except RoutingError:
                self.stats.packets_dropped_buffer += 1
                continue
            frame = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=low_hop,
                payload_bits=packet.payload_bits,
                header_bits=header_bits,
                payload=packet,
                require_ack=True,
            )
            self.low_mac.send(frame)
            self.stats.packets_sent_low += 1

    # ------------------------------------------------------------------
    # Control plane over the low-power radio.
    # ------------------------------------------------------------------

    def _send_control(self, message: object, dst: int) -> None:
        self._forward_control(ControlEnvelope(message, self.node_id, dst))

    def _forward_control(self, envelope: ControlEnvelope) -> None:
        if envelope.dst == self.node_id:
            self._on_control(envelope.message)
            return
        if envelope.ttl <= 0:
            return
        try:
            next_hop = self.low_routing.next_hop(self.node_id, envelope.dst)
        except RoutingError:
            return
        frame = Frame(
            kind=FrameKind.CONTROL,
            src=self.node_id,
            dst=next_hop,
            payload_bits=CONTROL_PAYLOAD_BITS,
            header_bits=self.low_mac.radio.spec.header_bits,
            payload=envelope,
            require_ack=True,
        )
        self.low_mac.send(frame)

    def _on_low_frame(self, frame: Frame) -> None:
        envelope = frame.payload
        if isinstance(envelope, ControlEnvelope):
            if envelope.dst == self.node_id:
                self._on_control(envelope.message)
            else:
                self.stats.control_forwarded += 1
                self._forward_control(envelope.forwarded())
            return
        if isinstance(envelope, DataPacket):
            # Delay-constrained data travelling over the low-power radio:
            # deliver or keep forwarding immediately (it was flushed
            # because buffering would violate its deadline).
            packet = envelope
            packet.hops += 1
            if packet.dst == self.node_id:
                self.stats.packets_delivered += 1
                self.deliver(packet)
                return
            try:
                low_hop = self.low_routing.next_hop(self.node_id, packet.dst)
            except RoutingError:
                return
            relay = Frame(
                kind=FrameKind.DATA,
                src=self.node_id,
                dst=low_hop,
                payload_bits=packet.payload_bits,
                header_bits=self.low_mac.radio.spec.header_bits,
                payload=packet,
                require_ack=True,
            )
            self.low_mac.send(relay)
            self.stats.packets_sent_low += 1

    def _on_control(self, message: object) -> None:
        if isinstance(message, Wakeup):
            self._handle_wakeup(message)
        elif isinstance(message, WakeupAck):
            self._handle_wakeup_ack(message)

    # ------------------------------------------------------------------
    # Receiver side.
    # ------------------------------------------------------------------

    def _handle_wakeup(self, wakeup: Wakeup) -> None:
        config = self.config
        session = self._receiver_sessions.get(wakeup.origin)
        if session is not None and session.session_id == wakeup.session_id:
            # Duplicate WAKEUP (our ACK was lost): refresh and re-ack.
            session.last_activity_s = self.sim.now
            self._send_ack(session)
            return
        if config.flow_control:
            allowed = min(float(wakeup.burst_bytes), self._acceptable_bytes())
        else:
            allowed = float(wakeup.burst_bytes)
        if allowed <= 0:
            # Full buffer: stay silent; the sender will retry later.
            return
        session = _ReceiverSession(
            origin=wakeup.origin,
            session_id=wakeup.session_id,
            expected_bytes=allowed,
            last_activity_s=self.sim.now,
        )
        self._receiver_sessions[wakeup.origin] = session
        self.high_radio.wake()
        self._radio_holds += 1
        self._send_ack(session)
        self.sim.process(
            self._receiver_watchdog(session),
            name=f"bcp.{self.node_id}.rx.{wakeup.origin}",
        )

    def _acceptable_bytes(self) -> float:
        """How much bulk data this node can take (receiver flow control)."""
        pending = sum(
            session.expected_bytes - session.received_bytes
            for session in self._receiver_sessions.values()
            if session.active
        )
        return max(0.0, self.buffer.free_bytes - pending)

    def _send_ack(self, session: _ReceiverSession) -> None:
        ack = WakeupAck(
            origin=self.node_id,
            target=session.origin,
            session_id=session.session_id,
            allowed_bytes=int(session.expected_bytes),
        )
        self.stats.acks_sent += 1
        self._send_control(ack, session.origin)

    def _handle_wakeup_ack(self, ack: WakeupAck) -> None:
        session = self._sender_sessions.get(ack.origin)
        if session is None or session.session_id != ack.session_id:
            return
        if session.ack_event is not None and not session.ack_event.triggered:
            session.allowed_bytes = float(ack.allowed_bytes)
            session.ack_event.succeed(float(ack.allowed_bytes))

    def _receiver_watchdog(self, session: _ReceiverSession) -> typing.Generator:
        """Close the session when complete or idle too long (Section 3)."""
        idle = self.config.receiver_idle_timeout_s
        while session.active:
            yield self.sim.timeout(idle)
            if not session.active:
                return
            if session.received_bytes >= session.expected_bytes:
                self._close_receiver_session(session)
                return
            if self.sim.now - session.last_activity_s >= idle:
                self.stats.receiver_timeouts += 1
                self._close_receiver_session(session)
                return

    def _close_receiver_session(self, session: _ReceiverSession) -> None:
        if not session.active:
            return
        session.active = False
        current = self._receiver_sessions.get(session.origin)
        if current is session:
            del self._receiver_sessions[session.origin]
        self._release_radio_hold()

    def _on_high_frame(self, frame: Frame) -> None:
        fragment = frame.payload
        if not isinstance(fragment, BurstFragment):
            return
        session = self._receiver_sessions.get(fragment.origin)
        if session is not None and session.active:
            session.last_activity_s = self.sim.now
            session.received_bytes += fragment.payload_bits / 8
            session.fragments_seen.add(fragment.index)
            session.fragments_total = fragment.total
        for packet in fragment.packets:
            packet.hops += 1
            self.stats.packets_received += 1
            self.submit(packet)
        # Turn off as soon as the advertised burst is complete ("the
        # receiver turns off its high-power radio when it receives the
        # total number of packets advertised").
        if (
            session is not None
            and session.active
            and session.fragments_total is not None
            and len(session.fragments_seen) >= session.fragments_total
        ):
            self._close_receiver_session(session)

    # ------------------------------------------------------------------
    # High-power radio power management.
    # ------------------------------------------------------------------

    def _release_radio_hold(self) -> None:
        self._radio_holds -= 1
        if self._radio_holds > 0:
            return
        if self.config.idle_linger_s > 0:
            self.sim.call_later(self.config.idle_linger_s, self._try_sleep)
        else:
            self._try_sleep()

    def _try_sleep(self) -> None:
        if self._radio_holds > 0 or not self.high_radio.is_on:
            return
        if self.high_radio.is_transmitting or self.high_mac.has_pending_ack:
            # A frame (or our MAC-level ACK for the burst's last frame) is
            # still in flight; re-check shortly.
            self.sim.call_later(1e-3, self._try_sleep)
            return
        self.high_radio.sleep()

    # ------------------------------------------------------------------
    # Shortcut learning (promiscuous overhearing).
    # ------------------------------------------------------------------

    def _on_overheard(self, frame: Frame) -> None:
        if self.shortcuts is None:
            return
        fragment = frame.payload
        if not isinstance(fragment, BurstFragment) or not fragment.packets:
            return
        # Recognize our packets by their network-layer source: relays
        # re-fragment bursts under their own session/origin, but the
        # DataPackets inside keep the original sender.
        ours = [
            packet
            for packet in fragment.packets
            if packet.src == self.node_id
        ]
        if not ours:
            return
        self.shortcuts.observe_forwarding(ours[0].dst, frame.src)
