"""Sweep orchestration for the evaluation figures (Figs. 5–10).

Each simulation figure is a view over the same experiment matrix:

* the **SH sweep** (Figs. 5–7): Lucent 11 Mb/s + Micaz, same tree for both
  radios, models {Sensor, 802.11, DualRadio-b for b in burst sizes} ×
  sender counts;
* the **MH sweep** (Figs. 8–10): Cabletron reaching the sink in one hop.

A sweep returns raw per-run results (:class:`SweepCell`) so the different
figures can apply their own metric/energy-accounting view: Fig. 6/9 plot
the sensor runs under *two* accountings (ideal and header-overhearing) and
the dual runs under the full dual accounting; Fig. 7/10 re-plot energy
against delay.

Scale note: the paper runs 5000 s × 20 seeds.  That is hours of CPU in
pure Python when run serially, so callers choose the scale; the defaults
here are laptop sized (the benchmark suite uses them) and `--paper` scale
is available via the CLI.  Shapes are stable across this range because
every mechanism (buffering delay, contention collapse, wake-up
amortization) operates identically — only confidence intervals widen.

The matrix is embarrassingly parallel: :func:`sweep_plan` lays out every
``(label, sender-count, seed)`` run as an independent
:class:`~repro.models.scenario.ScenarioConfig`, and :func:`run_sweep`
executes the batch through a :class:`~repro.runner.SweepRunner` — serial
by default, fanned over worker processes with ``jobs > 1``, and served
from the on-disk result cache when one is attached.  Results are
byte-identical either way.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.models.scenario import (
    MODEL_DUAL,
    MODEL_SENSOR,
    MODEL_WIFI,
    ScenarioConfig,
    multi_hop_config,
    replica_configs,
    single_hop_config,
)
from repro.models.scenario import run_scenario
from repro.runner.executor import SweepRunner
from repro.stats.metrics import (
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
    RunResult,
)
from repro.stats.summary import ReplicatedSummary, summarize_runs

#: Label used for the pure models in the figures' legends.
LABEL_SENSOR = "Sensor"
LABEL_WIFI = "802.11"


def dual_label(burst: int) -> str:
    """Legend label for a dual-radio burst size (e.g. ``DualRadio-500``)."""
    return f"DualRadio-{burst}"


@dataclasses.dataclass
class SweepCell:
    """All replicated runs of one (model/burst, sender-count) cell."""

    results: list[RunResult]

    def summary(self, energy_key: str = ENERGY_TOTAL) -> ReplicatedSummary:
        """Mean ± CI of the cell under the given energy accounting."""
        return summarize_runs(self.results, energy_key=energy_key)

    def to_dicts(self) -> list[dict[str, typing.Any]]:
        """The cell's runs in canonical serialized form (cache payloads)."""
        from repro.runner.cache import result_to_dict

        return [result_to_dict(result) for result in self.results]


@dataclasses.dataclass
class SweepData:
    """The experiment matrix: label → sender count → cell."""

    case: str  # "SH" or "MH"
    rate_bps: float
    sim_time_s: float
    n_runs: int
    cells: dict[str, dict[int, SweepCell]]

    def labels(self) -> list[str]:
        """All series labels in insertion order."""
        return list(self.cells)

    def sender_counts(self) -> list[int]:
        """Sorted sender counts present in the sweep."""
        counts: set[int] = set()
        for per_count in self.cells.values():
            counts.update(per_count)
        return sorted(counts)


@dataclasses.dataclass
class SweepScale:
    """How big to run a sweep.

    The defaults are the benchmark scale; :meth:`paper` is the full
    Section 4.1 parameterization.
    """

    senders: tuple[int, ...] = (5, 20, 35)
    bursts: tuple[int, ...] = (10, 100, 500, 1000, 2500)
    n_runs: int = 2
    sim_time_s: float = 150.0
    seed: int = 1

    @classmethod
    def paper(cls) -> "SweepScale":
        """The paper's scale: all sender counts, 5000 s, 20 runs."""
        return cls(
            senders=(5, 10, 15, 20, 25, 30, 35),
            bursts=(10, 100, 500, 1000, 2500),
            n_runs=20,
            sim_time_s=5000.0,
        )

    @classmethod
    def smoke(cls) -> "SweepScale":
        """Smallest does-it-run-at-all scale (unit-test sized, 60 s).

        Too small for the figure benchmarks' shape assertions — use
        :meth:`ci` for those.
        """
        return cls(senders=(5, 20), bursts=(10, 500), n_runs=1, sim_time_s=60.0)

    @classmethod
    def ci(cls) -> "SweepScale":
        """The CI *benchmark* scale: a strict subset of the bench matrix.

        Keeps the lightest and heaviest sender counts and the bursts the
        figure assertions reference (10 and 100) at the full 120 s bench
        duration, so every per-cell result — and thus every asserted
        shape — matches the bench-scale run cell-for-cell.  (Contrast
        :meth:`smoke`, which only checks that a sweep runs at all.)
        """
        return cls(senders=(5, 35), bursts=(10, 100), n_runs=1, sim_time_s=120.0)

    def replace(self, **changes: typing.Any) -> "SweepScale":
        """Copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def _base_config(
    case: str,
    rate_bps: float | None,
    overrides: typing.Mapping[str, typing.Any] | None = None,
) -> ScenarioConfig:
    if case == "SH":
        config = single_hop_config()
    elif case == "MH":
        config = multi_hop_config()
    else:
        raise ValueError(f"case must be 'SH' or 'MH', got {case!r}")
    if rate_bps is not None:
        config = config.replace(rate_bps=rate_bps)
    if overrides:
        config = config.replace(**dict(overrides))
    return config


@dataclasses.dataclass(frozen=True)
class PlannedRun:
    """One run of the experiment matrix: its cell and concrete config."""

    label: str
    n_senders: int
    config: ScenarioConfig

    def describe(self, case: str) -> str:
        """Progress label, e.g. ``"SH: DualRadio-500 senders=20 seed=3"``."""
        return (
            f"{case}: {self.label} senders={self.n_senders} "
            f"seed={self.config.seed}"
        )


def sweep_plan(
    case: str,
    scale: SweepScale | None = None,
    rate_bps: float | None = None,
    include_wifi: bool = True,
    include_sensor: bool = True,
    overrides: typing.Mapping[str, typing.Any] | None = None,
) -> list[PlannedRun]:
    """Lay out every run of the matrix as an independent config.

    Order is deterministic and matches the figures' legend order: dual
    models per burst size, then the sensor baseline, then 802.11 — each
    swept over sender counts, each cell replicated ``scale.n_runs`` times
    with consecutive seeds.

    ``overrides`` is applied to the case's base config before the matrix
    is laid out; it is how the composition axes (``topology``,
    ``propagation``, ``high_radios``, ``traffic``/``traffic_mix``) enter
    the planner — the resulting cells hash, cache and shard like any
    paper cell.
    """
    scale = scale or SweepScale()
    base = _base_config(case, rate_bps, overrides)
    plan: list[PlannedRun] = []

    def add_cell(label: str, n_senders: int, config: ScenarioConfig) -> None:
        for replica in replica_configs(config, scale.n_runs):
            plan.append(PlannedRun(label, n_senders, replica))

    for burst in scale.bursts:
        for n_senders in scale.senders:
            add_cell(
                dual_label(burst),
                n_senders,
                base.replace(
                    model=MODEL_DUAL,
                    burst_packets=burst,
                    n_senders=n_senders,
                    sim_time_s=scale.sim_time_s,
                    seed=scale.seed,
                ),
            )
    if include_sensor:
        for n_senders in scale.senders:
            add_cell(
                LABEL_SENSOR,
                n_senders,
                base.replace(
                    model=MODEL_SENSOR,
                    n_senders=n_senders,
                    sim_time_s=scale.sim_time_s,
                    seed=scale.seed,
                ),
            )
    if include_wifi:
        for n_senders in scale.senders:
            add_cell(
                LABEL_WIFI,
                n_senders,
                base.replace(
                    model=MODEL_WIFI,
                    n_senders=n_senders,
                    sim_time_s=scale.sim_time_s,
                    seed=scale.seed,
                ),
            )
    return plan


def run_sweep(
    case: str,
    scale: SweepScale | None = None,
    rate_bps: float | None = None,
    include_wifi: bool = True,
    include_sensor: bool = True,
    progress: typing.Callable[[str], None] | None = None,
    runner: SweepRunner | None = None,
    overrides: typing.Mapping[str, typing.Any] | None = None,
) -> SweepData:
    """Run the full experiment matrix for one case.

    Parameters
    ----------
    case:
        "SH" (Figs. 5–7) or "MH" (Figs. 8–10).
    scale:
        Sweep size (defaults to the benchmark scale).
    rate_bps:
        Per-sender rate override (the paper uses 2 kb/s for the
        goodput/energy figures and 0.2 kb/s for the energy–delay figures).
    include_wifi / include_sensor:
        Skip the baselines when a figure does not need them.
    overrides:
        Extra :class:`ScenarioConfig` field overrides applied to the base
        config (scenario-composition axes, field sizes, ...).
    progress:
        Optional callback invoked with a human-readable line per cell
        (the legacy interface; the runner's own progress events carry
        completion counts, cache hits and ETA).
    runner:
        Execution engine.  Defaults to a fresh serial, cache-less
        :class:`~repro.runner.SweepRunner`, which reproduces the historic
        behavior exactly.
    """
    scale = scale or SweepScale()
    plan = sweep_plan(
        case,
        scale,
        rate_bps=rate_bps,
        include_wifi=include_wifi,
        include_sensor=include_sensor,
        overrides=overrides,
    )
    base = _base_config(case, rate_bps, overrides)
    legacy_progress = None
    if progress is not None:
        # One line per cell, emitted as each cell first produces a result,
        # so the callback keeps tracking live execution.
        announced: set[tuple[str, int]] = set()

        def legacy_progress(event: typing.Any) -> None:
            planned = plan[event.index]
            cell = (planned.label, planned.n_senders)
            if cell not in announced:
                announced.add(cell)
                progress(f"{case}: {planned.label} senders={planned.n_senders}")

    runner = runner or SweepRunner()
    results = runner.map(
        run_scenario,
        [planned.config for planned in plan],
        describe=lambda index, _config: plan[index].describe(case),
        progress=legacy_progress,
    )
    cells: dict[str, dict[int, SweepCell]] = {}
    for planned, result in zip(plan, results):
        per_count = cells.setdefault(planned.label, {})
        per_count.setdefault(planned.n_senders, SweepCell([])).results.append(
            result
        )
    return SweepData(
        case=case,
        rate_bps=base.rate_bps if rate_bps is None else rate_bps,
        sim_time_s=scale.sim_time_s,
        n_runs=scale.n_runs,
        cells=cells,
    )


def sweep_digest(sweep: SweepData) -> str:
    """A stable sha256 over the sweep's full serialized result set.

    Byte-identity is the contract the distributed machinery rests on:
    serial, process-pool and merged-shard executions of the same plan
    must serialize to the same bytes, so their digests must collide.  The
    golden-trace determinism tests pin one such digest in-repo — any
    semantic drift in the simulator, the result schema, or the float
    round-tripping shows up as a loud digest mismatch.
    """
    import hashlib
    import json

    payload = {
        "case": sweep.case,
        "rate_bps": sweep.rate_bps,
        "sim_time_s": sweep.sim_time_s,
        "n_runs": sweep.n_runs,
        "cells": {
            label: {
                str(n): cell.to_dicts() for n, cell in per_count.items()
            }
            for label, per_count in sweep.cells.items()
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def goodput_rows(sweep: SweepData) -> dict[str, dict[int, float]]:
    """Fig. 5 / Fig. 8 view: goodput per label per sender count."""
    return {
        label: {
            n: cell.summary().goodput.mean for n, cell in per_count.items()
        }
        for label, per_count in sweep.cells.items()
    }


def energy_rows(sweep: SweepData) -> dict[str, dict[int, float]]:
    """Fig. 6 / Fig. 9 view: normalized energy (J/Kbit).

    The sensor runs appear twice — under the ideal and header-overhearing
    accountings — exactly as the paper plots them; the 802.11 model is
    omitted (the paper excludes it from energy comparisons).
    """
    rows: dict[str, dict[int, float]] = {}
    for label, per_count in sweep.cells.items():
        if label == LABEL_WIFI:
            continue
        if label == LABEL_SENSOR:
            for variant, key in (
                ("Sensor-ideal", ENERGY_SENSOR_IDEAL),
                ("Sensor-header", ENERGY_SENSOR_HEADER),
            ):
                rows[variant] = {}
                for n, cell in per_count.items():
                    estimate = cell.summary(key).normalized_energy_j_per_kbit
                    rows[variant][n] = (
                        estimate.mean if estimate is not None else float("inf")
                    )
            continue
        rows[label] = {}
        for n, cell in per_count.items():
            estimate = cell.summary().normalized_energy_j_per_kbit
            rows[label][n] = (
                estimate.mean if estimate is not None else float("inf")
            )
    return rows


def energy_delay_points(
    sweep: SweepData,
) -> dict[int, list[tuple[int, float, float]]]:
    """Fig. 7 / Fig. 10 view: (burst, delay s, energy J/Kbit) per sender count.

    Each sender count is one line; each burst size is one point along it.
    """
    points: dict[int, list[tuple[int, float, float]]] = {}
    for label, per_count in sweep.cells.items():
        if not label.startswith("DualRadio-"):
            continue
        burst = int(label.split("-", 1)[1])
        for n, cell in per_count.items():
            summary = cell.summary()
            energy = (
                summary.normalized_energy_j_per_kbit.mean
                if summary.normalized_energy_j_per_kbit is not None
                else float("inf")
            )
            points.setdefault(n, []).append(
                (burst, summary.mean_delay_s.mean, energy)
            )
    for n in points:
        points[n].sort()
    return points
