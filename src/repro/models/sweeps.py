"""Sweep orchestration for the evaluation figures (Figs. 5–10).

Each simulation figure is a view over the same experiment matrix:

* the **SH sweep** (Figs. 5–7): Lucent 11 Mb/s + Micaz, same tree for both
  radios, models {Sensor, 802.11, DualRadio-b for b in burst sizes} ×
  sender counts;
* the **MH sweep** (Figs. 8–10): Cabletron reaching the sink in one hop.

A sweep returns raw per-run results (:class:`SweepCell`) so the different
figures can apply their own metric/energy-accounting view: Fig. 6/9 plot
the sensor runs under *two* accountings (ideal and header-overhearing) and
the dual runs under the full dual accounting; Fig. 7/10 re-plot energy
against delay.

Scale note: the paper runs 5000 s × 20 seeds.  That is hours of CPU in
pure Python, so callers choose the scale; the defaults here are laptop
sized (the benchmark suite uses them) and `--paper` scale is available via
the CLI.  Shapes are stable across this range because every mechanism
(buffering delay, contention collapse, wake-up amortization) operates
identically — only confidence intervals widen.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.models.scenario import (
    MODEL_DUAL,
    MODEL_SENSOR,
    MODEL_WIFI,
    ScenarioConfig,
    multi_hop_config,
    single_hop_config,
)
from repro.models.scenario import run_scenario
from repro.stats.metrics import (
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
    RunResult,
)
from repro.stats.summary import ReplicatedSummary, summarize_runs

#: Label used for the pure models in the figures' legends.
LABEL_SENSOR = "Sensor"
LABEL_WIFI = "802.11"


def dual_label(burst: int) -> str:
    """Legend label for a dual-radio burst size (e.g. ``DualRadio-500``)."""
    return f"DualRadio-{burst}"


@dataclasses.dataclass
class SweepCell:
    """All replicated runs of one (model/burst, sender-count) cell."""

    results: list[RunResult]

    def summary(self, energy_key: str = ENERGY_TOTAL) -> ReplicatedSummary:
        """Mean ± CI of the cell under the given energy accounting."""
        return summarize_runs(self.results, energy_key=energy_key)


@dataclasses.dataclass
class SweepData:
    """The experiment matrix: label → sender count → cell."""

    case: str  # "SH" or "MH"
    rate_bps: float
    sim_time_s: float
    n_runs: int
    cells: dict[str, dict[int, SweepCell]]

    def labels(self) -> list[str]:
        """All series labels in insertion order."""
        return list(self.cells)

    def sender_counts(self) -> list[int]:
        """Sorted sender counts present in the sweep."""
        counts: set[int] = set()
        for per_count in self.cells.values():
            counts.update(per_count)
        return sorted(counts)


@dataclasses.dataclass
class SweepScale:
    """How big to run a sweep.

    The defaults are the benchmark scale; :meth:`paper` is the full
    Section 4.1 parameterization.
    """

    senders: tuple[int, ...] = (5, 20, 35)
    bursts: tuple[int, ...] = (10, 100, 500, 1000, 2500)
    n_runs: int = 2
    sim_time_s: float = 150.0
    seed: int = 1

    @classmethod
    def paper(cls) -> "SweepScale":
        """The paper's scale: all sender counts, 5000 s, 20 runs."""
        return cls(
            senders=(5, 10, 15, 20, 25, 30, 35),
            bursts=(10, 100, 500, 1000, 2500),
            n_runs=20,
            sim_time_s=5000.0,
        )

    @classmethod
    def smoke(cls) -> "SweepScale":
        """Minimal scale for CI smoke tests."""
        return cls(senders=(5, 20), bursts=(10, 500), n_runs=1, sim_time_s=60.0)


def _base_config(case: str, rate_bps: float | None) -> ScenarioConfig:
    if case == "SH":
        config = single_hop_config()
        if rate_bps is not None:
            config = config.replace(rate_bps=rate_bps)
        return config
    if case == "MH":
        config = multi_hop_config()
        if rate_bps is not None:
            config = config.replace(rate_bps=rate_bps)
        return config
    raise ValueError(f"case must be 'SH' or 'MH', got {case!r}")


def _replicate(config: ScenarioConfig, n_runs: int) -> SweepCell:
    results = [
        run_scenario(config.replace(seed=config.seed + offset))
        for offset in range(n_runs)
    ]
    return SweepCell(results)


def run_sweep(
    case: str,
    scale: SweepScale | None = None,
    rate_bps: float | None = None,
    include_wifi: bool = True,
    include_sensor: bool = True,
    progress: typing.Callable[[str], None] | None = None,
) -> SweepData:
    """Run the full experiment matrix for one case.

    Parameters
    ----------
    case:
        "SH" (Figs. 5–7) or "MH" (Figs. 8–10).
    scale:
        Sweep size (defaults to the benchmark scale).
    rate_bps:
        Per-sender rate override (the paper uses 2 kb/s for the
        goodput/energy figures and 0.2 kb/s for the energy–delay figures).
    include_wifi / include_sensor:
        Skip the baselines when a figure does not need them.
    progress:
        Optional callback invoked with a human-readable line per cell.
    """
    scale = scale or SweepScale()
    base = _base_config(case, rate_bps)
    cells: dict[str, dict[int, SweepCell]] = {}

    def note(label: str, n_senders: int) -> None:
        if progress is not None:
            progress(f"{case}: {label} senders={n_senders}")

    for burst in scale.bursts:
        label = dual_label(burst)
        cells[label] = {}
        for n_senders in scale.senders:
            note(label, n_senders)
            config = base.replace(
                model=MODEL_DUAL,
                burst_packets=burst,
                n_senders=n_senders,
                sim_time_s=scale.sim_time_s,
                seed=scale.seed,
            )
            cells[label][n_senders] = _replicate(config, scale.n_runs)
    if include_sensor:
        cells[LABEL_SENSOR] = {}
        for n_senders in scale.senders:
            note(LABEL_SENSOR, n_senders)
            config = base.replace(
                model=MODEL_SENSOR,
                n_senders=n_senders,
                sim_time_s=scale.sim_time_s,
                seed=scale.seed,
            )
            cells[LABEL_SENSOR][n_senders] = _replicate(config, scale.n_runs)
    if include_wifi:
        cells[LABEL_WIFI] = {}
        for n_senders in scale.senders:
            note(LABEL_WIFI, n_senders)
            config = base.replace(
                model=MODEL_WIFI,
                n_senders=n_senders,
                sim_time_s=scale.sim_time_s,
                seed=scale.seed,
            )
            cells[LABEL_WIFI][n_senders] = _replicate(config, scale.n_runs)
    return SweepData(
        case=case,
        rate_bps=base.rate_bps if rate_bps is None else rate_bps,
        sim_time_s=scale.sim_time_s,
        n_runs=scale.n_runs,
        cells=cells,
    )


def goodput_rows(sweep: SweepData) -> dict[str, dict[int, float]]:
    """Fig. 5 / Fig. 8 view: goodput per label per sender count."""
    return {
        label: {
            n: cell.summary().goodput.mean for n, cell in per_count.items()
        }
        for label, per_count in sweep.cells.items()
    }


def energy_rows(sweep: SweepData) -> dict[str, dict[int, float]]:
    """Fig. 6 / Fig. 9 view: normalized energy (J/Kbit).

    The sensor runs appear twice — under the ideal and header-overhearing
    accountings — exactly as the paper plots them; the 802.11 model is
    omitted (the paper excludes it from energy comparisons).
    """
    rows: dict[str, dict[int, float]] = {}
    for label, per_count in sweep.cells.items():
        if label == LABEL_WIFI:
            continue
        if label == LABEL_SENSOR:
            for variant, key in (
                ("Sensor-ideal", ENERGY_SENSOR_IDEAL),
                ("Sensor-header", ENERGY_SENSOR_HEADER),
            ):
                rows[variant] = {}
                for n, cell in per_count.items():
                    estimate = cell.summary(key).normalized_energy_j_per_kbit
                    rows[variant][n] = (
                        estimate.mean if estimate is not None else float("inf")
                    )
            continue
        rows[label] = {}
        for n, cell in per_count.items():
            estimate = cell.summary().normalized_energy_j_per_kbit
            rows[label][n] = (
                estimate.mean if estimate is not None else float("inf")
            )
    return rows


def energy_delay_points(
    sweep: SweepData,
) -> dict[int, list[tuple[int, float, float]]]:
    """Fig. 7 / Fig. 10 view: (burst, delay s, energy J/Kbit) per sender count.

    Each sender count is one line; each burst size is one point along it.
    """
    points: dict[int, list[tuple[int, float, float]]] = {}
    for label, per_count in sweep.cells.items():
        if not label.startswith("DualRadio-"):
            continue
        burst = int(label.split("-", 1)[1])
        for n, cell in per_count.items():
            summary = cell.summary()
            energy = (
                summary.normalized_energy_j_per_kbit.mean
                if summary.normalized_energy_j_per_kbit is not None
                else float("inf")
            )
            points.setdefault(n, []).append(
                (burst, summary.mean_delay_s.mean, energy)
            )
    for n in points:
        points[n].sort()
    return points
