"""Hop-by-hop store-and-forward agent for the single-radio models.

The paper's *Sensor* and *802.11* baselines forward each data packet
immediately over their one radio along the routing tree.  The
:class:`ForwardingAgent` is that network layer: it accepts locally generated
packets, relays received ones, and delivers packets addressed to its node.
(The dual-radio model replaces this agent with
:class:`repro.core.BcpAgent`.)
"""

from __future__ import annotations

import typing

from repro.mac.base import ContentionMac
from repro.mac.frames import Frame, FrameKind
from repro.net.packets import DataPacket
from repro.net.routing import RoutingError, RoutingLike

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class ForwardingAgent:
    """Immediate per-packet forwarding over a single MAC.

    Parameters
    ----------
    sim / node_id / mac / routing:
        Kernel, owning node, the MAC to transmit with, next-hop table.
    deliver:
        Callback for packets whose final destination is this node.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: int,
        mac: ContentionMac,
        routing: RoutingLike,
        deliver: typing.Callable[[DataPacket], None],
    ):
        self.sim = sim
        self.node_id = node_id
        self.mac = mac
        self.routing = routing
        self.deliver = deliver
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.packets_unroutable = 0
        mac.set_data_handler(self._on_frame)

    def submit(self, packet: DataPacket) -> None:
        """Accept a packet (locally generated or received) for handling."""
        if packet.dst == self.node_id:
            self.deliver(packet)
            return
        try:
            next_hop = self.routing.next_hop(self.node_id, packet.dst)
        except RoutingError:
            self.packets_unroutable += 1
            return
        frame = Frame(
            kind=FrameKind.DATA,
            src=self.node_id,
            dst=next_hop,
            payload_bits=packet.payload_bits,
            header_bits=self.mac.radio.spec.header_bits,
            payload=packet,
            require_ack=True,
        )
        done = self.mac.send(frame)
        done.callbacks.append(self._sent)

    def _sent(self, event: typing.Any) -> None:
        if event.value:
            self.packets_forwarded += 1
        else:
            self.packets_dropped += 1

    def _on_frame(self, frame: Frame) -> None:
        packet = frame.payload
        if not isinstance(packet, DataPacket):
            return
        packet.hops += 1
        self.submit(packet)
