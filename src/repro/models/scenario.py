"""The Section 4.1 evaluation harness: scenario configuration and metrics.

A :class:`ScenarioConfig` describes one cell of the experiment matrix:
which model (*sensor*, *wifi*, *dual*), the deployment, who sends at what
rate, the burst size, and whether the high-power radio has the multi-hop
range advantage.  :func:`run_scenario` builds the network, runs it, and
returns a :class:`~repro.stats.metrics.RunResult`; :func:`run_replicated`
repeats with different seeds for confidence intervals.

Scenario composition
--------------------
The paper evaluates one deployment shape — a 6×6 grid, unit-disc links,
one radio pairing per model.  Those remain the defaults (and remain
byte-identical to the original harness), but each axis is now pluggable
through registry-backed spec fields, so deployments beyond the paper are
plain config data — hashable, cacheable and sweepable like any other cell:

* ``topology`` — a :class:`~repro.topology.registry.TopologySpec`
  (``grid``, ``line``, ``uniform-random``, ``clustered``, ``from-file``);
  ``None`` keeps the paper's ``rows × cols × spacing_m`` grid fields.
* ``propagation`` — a :class:`~repro.channel.propagation.PropagationSpec`
  (``unit-disc``, ``log-normal``, ``distance-prr``) applied to both
  channels; ``None`` keeps the paper's unit-disc medium.
* ``high_radios`` — a :class:`RadioAssignment` naming each node's
  high-power NIC (mixed fleets, a Cabletron-only sink, ...); ``None``
  gives every node ``high_spec`` as before.
* ``traffic`` / ``traffic_mix`` — registry names from
  :mod:`repro.traffic.registry`; the mix overrides the uniform choice per
  sender (e.g. a few audio nodes among CBR ones).
* ``routing`` — the route-build engine: ``auto`` (default) keeps the
  paper's eager all-pairs table up to :data:`LAZY_ROUTING_THRESHOLD`
  nodes and switches to the lazy array-backed engine beyond it (see
  :mod:`repro.net.routing`); ``eager``/``lazy`` force one.

Paper defaults (Section 4.1): 200×200 m² grid of 36 nodes, 5000 s runs,
32 B sensor packets, 1024 B 802.11 packets, buffer 5000 × 32 B, burst
sizes {10, 100, 500, 1000, 2500} packets, 20 runs with 95% CIs.  The
single-hop (SH) case pairs Micaz with Lucent 11 Mb/s (same range, same
tree); the multi-hop (MH) case pairs Micaz with Cabletron, which reaches
the sink in one hop.

The paper does not state where the sink sits.  We place it near the grid
center (node 14, at 80 m/80 m), the choice consistent with both of the
paper's statements: Cabletron's nominal 250 m range genuinely covers every
node from there (max distance 170 m — a corner sink would need 283 m), and
sensor paths stay within the handful of hops the evaluation implies.
Equal-cost routing ties break at random per run (seeded); on a perfect
grid, deterministic ties would funnel every flow onto one row, a
worst-case artifact no deployed collection tree shows.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.channel.medium import LossModel, Medium
from repro.channel.propagation import (
    PROPAGATION,
    PropagationSpec,
    build_propagation,
)
from repro.core.bcp import BcpAgent, BcpNodeSpec
from repro.core.config import BcpConfig
from repro.energy.battery import AA_PAIR_CAPACITY_J
from repro.energy.meter import MeterBank, NodeMeter
from repro.energy.radio_specs import (
    CABLETRON,
    FIRST_ORDER_RADIO_MODEL,
    LUCENT_11,
    MICAZ,
    RadioSpec,
    get_spec,
)
from repro.energy.residual import live_residual_fraction
from repro.faults import FaultInjector, FaultPlan
from repro.mac.base import MAC_ENGINES
from repro.mac.csma import SensorCsmaMac
from repro.mac.dcf import DcfMac
from repro.models.forwarding import ForwardingAgent
from repro.net.addressing import AddressMap
from repro.net.csr import CsrGraph
from repro.net.policy import (
    POLICY_HOPS,
    ROUTING_POLICIES,
    RoutingPolicyContext,
    build_cost_model,
)
from repro.net.routing import (
    ENGINE_EAGER,
    ENGINE_LAZY,
    DijkstraRoutingTable,
    LazyRoutingTable,
    RoutingLike,
    RoutingTable,
    build_routing,
)
from repro.perf.phases import phase
from repro.radio.radio import (
    CATEGORY_OVERHEAR_BODY,
    CATEGORY_OVERHEAR_HEADER,
    HighPowerRadio,
    LowPowerRadio,
)
from repro.sim.scheduler import SCHEDULER_MODES
from repro.sim.simulator import Simulator
from repro.stats.collector import SinkCollector
from repro.stats.metrics import (
    ENERGY_HIGH_RADIO,
    ENERGY_LOW_RADIO,
    ENERGY_SENSOR_FULL,
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
    RunResult,
)
from repro.stats.summary import ReplicatedSummary, summarize_runs
from repro.topology.layout import Layout, grid_layout
from repro.topology.registry import (
    TOPOLOGIES,
    TopologySpec,
    build_layout,
    topology_node_count,
)
from repro.traffic.registry import TRAFFIC, build_source
from repro.units import BITS_PER_BYTE

if typing.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runner.executor import SweepRunner

#: Model identifiers.
MODEL_SENSOR = "sensor"
MODEL_WIFI = "wifi"
MODEL_DUAL = "dual"

#: The burst sizes (in sensor packets) the paper sweeps.
PAPER_BURST_SIZES = (10, 100, 500, 1000, 2500)

#: The sender counts on the figures' x axes.
PAPER_SENDER_COUNTS = (5, 10, 15, 20, 25, 30, 35)

#: Deployment size above which ``routing="auto"`` switches to the lazy
#: array-backed engine.  Below it the historical eager engine is kept:
#: its threaded rng tie-breaking is what every pinned golden digest
#: encodes, and at paper scale (36 nodes) the build cost is negligible.
#: Above it the eager all-pairs build is the O(n²) wall, and the lazy
#: engine's per-destination tie-breaking (order-independent, documented
#: in :mod:`repro.net.routing`) takes over.
LAZY_ROUTING_THRESHOLD = 256

#: Routing engine selectors accepted by :attr:`ScenarioConfig.routing`.
ROUTING_MODES = ("auto", ENGINE_EAGER, ENGINE_LAZY)


@dataclasses.dataclass(frozen=True)
class RadioAssignment:
    """Per-node high-power radio selection for heterogeneous deployments.

    Attributes
    ----------
    default:
        Table 1 radio name every unlisted node gets; ``None`` falls back
        to the scenario's ``high_spec`` (with its multi-hop range
        override, if any).
    overrides:
        ``(node_id, radio_name)`` pairs for nodes that differ — e.g.
        ``((14, "Cabletron"),)`` for a deployment whose sink alone carries
        the long-range NIC.
    """

    default: str | None = None
    overrides: tuple[tuple[int, str], ...] = ()

    @classmethod
    def parse(cls, text: str, default: str | None = None) -> "RadioAssignment":
        """Parse CLI syntax ``node=Name,node=Name`` into an assignment."""
        overrides = []
        if text.strip():
            for pair in text.split(","):
                node, sep, name = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"bad radio override {pair!r}; expected node=RadioName"
                    )
                overrides.append((int(node), name.strip()))
        return cls(default=default, overrides=tuple(sorted(overrides)))

    def names(self) -> list[str]:
        """Every radio name the assignment references."""
        names = [name for _node, name in self.overrides]
        if self.default is not None:
            names.append(self.default)
        return names

    def spec_for(self, node_id: int, fallback: RadioSpec) -> RadioSpec:
        """The high-power spec ``node_id`` carries."""
        for node, name in self.overrides:
            if node == node_id:
                return get_spec(name)
        if self.default is not None:
            return get_spec(self.default)
        return fallback


@dataclasses.dataclass
class ScenarioConfig:
    """One experiment cell.  See module docstring for the paper defaults."""

    model: str = MODEL_DUAL
    rows: int = 6
    cols: int = 6
    spacing_m: float = 40.0
    sink: int = 14
    n_senders: int = 10
    rate_bps: float = 200.0
    payload_bytes: int = 32
    sim_time_s: float = 5000.0
    seed: int = 1
    low_spec: RadioSpec = MICAZ
    high_spec: RadioSpec = LUCENT_11
    multihop: bool = False
    multihop_range_m: float | None = None
    burst_packets: int = 500
    buffer_packets: int = 5000
    loss_probability: float = 0.0
    flow_control: bool = True
    shortcut_learning: bool = False
    shortcut_observation: bool = True
    idle_linger_s: float = 0.0
    wakeup_timeout_s: float = 3.0
    receiver_idle_timeout_s: float = 3.0
    traffic: str = "cbr"
    #: Deployment shape; ``None`` keeps the paper's grid fields above.
    topology: TopologySpec | None = None
    #: Channel propagation; ``None`` keeps the paper's unit-disc medium.
    propagation: PropagationSpec | None = None
    #: Per-node high-power radio selection; ``None`` = ``high_spec`` for all.
    high_radios: RadioAssignment | None = None
    #: Per-sender traffic overrides ``(node_id, source_name)``; unlisted
    #: senders use ``traffic``.
    traffic_mix: tuple[tuple[int, str], ...] = ()
    #: Routing engine: ``"auto"`` picks eager below
    #: :data:`LAZY_ROUTING_THRESHOLD` nodes and lazy above; ``"eager"`` /
    #: ``"lazy"`` force one.  Part of the cell's cached identity because
    #: the engines' seeded tie-break schemes differ (see
    #: :mod:`repro.net.routing`).
    routing: str = "auto"
    #: Route metric (:data:`repro.net.policy.ROUTING_POLICIES`): ``"hops"``
    #: (default) keeps the BFS engines and every pinned golden digest
    #: byte-identical; ``"tx-energy"`` / ``"residual-energy"`` route over
    #: the Dijkstra cost engine and consciously diverge.  Unlike
    #: ``routing`` (an engine choice with identical routes), the policy
    #: changes *which* routes are taken, so it is part of the cached
    #: identity in the strongest sense.
    routing_policy: str = POLICY_HOPS
    #: Simulator agenda backend (:data:`repro.sim.scheduler.SCHEDULER_MODES`):
    #: ``"heap"`` is the historical default, ``"calendar"`` batches
    #: same-timestamp timers (faster on slot-aligned MAC workloads).  Both
    #: produce byte-identical results — the choice is performance-only —
    #: but it is still part of the cached identity so a cache hit records
    #: which backend produced it.
    scheduler: str = "heap"
    #: MAC send-path engine (:data:`repro.mac.base.MAC_ENGINES`):
    #: ``"flat"`` (default) drives contention with a callback state
    #: machine and pooled timers; ``"generator"`` is the historical
    #: one-worker-process-per-MAC engine kept as the byte-identity
    #: reference.  Both produce byte-identical results — the choice is
    #: performance-only — but like ``scheduler`` it is part of the cached
    #: identity so a cache hit records which engine produced it.
    mac_engine: str = "flat"
    #: Fault schedule (:mod:`repro.faults`): scripted node crashes and
    #: recoveries, link up/down events, random churn, battery-depletion
    #: deaths.  ``None`` (and the zero plan ``FaultPlan()``) leave the
    #: run immortal and execute none of the fault machinery — the pinned
    #: golden digests cover exactly that path.  Part of the cached
    #: identity like every other axis.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.model not in (MODEL_SENSOR, MODEL_WIFI, MODEL_DUAL):
            raise ValueError(f"unknown model {self.model!r}")
        if self.routing not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing engine {self.routing!r}; "
                f"expected one of {ROUTING_MODES}"
            )
        if self.routing_policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing_policy!r}; "
                f"registered: {ROUTING_POLICIES.names()}"
            )
        if self.scheduler not in SCHEDULER_MODES:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_MODES}"
            )
        if self.mac_engine not in MAC_ENGINES:
            raise ValueError(
                f"unknown MAC engine {self.mac_engine!r}; "
                f"expected one of {MAC_ENGINES}"
            )
        if self.topology is not None and self.topology.kind not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology.kind!r}; "
                f"registered: {TOPOLOGIES.names()}"
            )
        if self.propagation is not None and self.propagation.kind not in PROPAGATION:
            raise ValueError(
                f"unknown propagation model {self.propagation.kind!r}; "
                f"registered: {PROPAGATION.names()}"
            )
        n_nodes = self.n_nodes
        if not 0 <= self.sink < n_nodes:
            raise ValueError("sink must be a deployed node")
        if not 1 <= self.n_senders <= n_nodes - 1:
            raise ValueError(
                f"n_senders must be in [1, {n_nodes - 1}], got {self.n_senders}"
            )
        for name in (self.traffic, *(name for _node, name in self.traffic_mix)):
            if name not in TRAFFIC:
                raise ValueError(
                    f"unknown traffic model {name!r}; registered: {TRAFFIC.names()}"
                )
        mix_nodes = [node for node, _name in self.traffic_mix]
        for node in mix_nodes:
            if not 0 <= node < n_nodes:
                raise ValueError(f"traffic_mix node {node} is not deployed")
            if node == self.sink:
                raise ValueError("traffic_mix cannot include the sink")
        if len(set(mix_nodes)) != len(mix_nodes):
            raise ValueError("traffic_mix lists a node more than once")
        if len(mix_nodes) > self.n_senders:
            raise ValueError(
                f"traffic_mix names {len(mix_nodes)} senders but n_senders "
                f"is {self.n_senders}; mix nodes always send"
            )
        if self.high_radios is not None:
            for node, _name in self.high_radios.overrides:
                if not 0 <= node < n_nodes:
                    raise ValueError(f"high_radios node {node} is not deployed")
            for name in self.high_radios.names():
                get_spec(name)  # raises KeyError listing valid names
        if self.faults is not None:
            self.faults.validate(n_nodes)

    @property
    def n_nodes(self) -> int:
        """Deployment size (grid fields, or the topology spec's count)."""
        if self.topology is None:
            return self.rows * self.cols
        return topology_node_count(self.topology)

    def build_layout(self, sim: Simulator) -> Layout:
        """Realize this config's deployment inside ``sim``.

        Randomized topologies draw from the ``"topology.layout"`` stream,
        so the deployment is a pure function of the config seed.
        """
        if self.topology is None:
            return grid_layout(self.rows, self.cols, self.spacing_m)
        return build_layout(self.topology, rng=sim.rng.stream("topology.layout"))

    def effective_high_spec(self) -> RadioSpec:
        """The high-power spec, with an optional MH range override.

        With the default center sink, Cabletron's own 250 m range reaches
        every node, so no override is needed; ``multihop_range_m`` exists
        for corner-sink or larger-field variants.
        """
        if self.multihop and self.multihop_range_m is not None:
            return self.high_spec.replace(range_m=self.multihop_range_m)
        return self.high_spec

    def high_spec_for(self, node_id: int) -> RadioSpec:
        """The high-power spec ``node_id`` carries (assignment-aware)."""
        fallback = self.effective_high_spec()
        if self.high_radios is None:
            return fallback
        return self.high_radios.spec_for(node_id, fallback)

    def traffic_for(self, node_id: int) -> str:
        """The traffic source name driving ``node_id`` if it sends."""
        for node, name in self.traffic_mix:
            if node == node_id:
                return name
        return self.traffic

    def routing_engine(self) -> str:
        """The resolved routing engine name (``"eager"`` or ``"lazy"``)."""
        if self.routing != "auto":
            return self.routing
        if self.n_nodes > LAZY_ROUTING_THRESHOLD:
            return ENGINE_LAZY
        return ENGINE_EAGER

    def replace(self, **changes: typing.Any) -> "ScenarioConfig":
        """Copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> str:
        """This cell's global identity: the sha256 config hash.

        The same value names the cell's cache entry (``<key>.json``),
        keys the progress of distributed runs, and decides which shard of
        an N-machine sweep executes the cell
        (:func:`repro.runner.shard.shard_index`) — identical on every
        machine because it is derived purely from the config's contents.
        Every composition axis (topology, propagation, radio assignment,
        traffic mix) is plain data inside the config, so it is covered
        automatically.
        """
        from repro.runner.hashing import config_key

        return config_key(self)


def single_hop_config(**overrides: typing.Any) -> ScenarioConfig:
    """The paper's SH setup: Lucent 11 Mb/s with sensor-equal range."""
    defaults: dict[str, typing.Any] = dict(
        model=MODEL_DUAL, high_spec=LUCENT_11, multihop=False
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def multi_hop_config(**overrides: typing.Any) -> ScenarioConfig:
    """The paper's MH setup: Cabletron reaching the sink in one hop."""
    defaults: dict[str, typing.Any] = dict(
        model=MODEL_DUAL, high_spec=CABLETRON, multihop=True, rate_bps=2000.0
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class _BuiltNetwork:
    """Everything a run produces, for post-run metric extraction.

    Per-node collections are struct-of-arrays style: flat lists indexed
    by node id (deployments are validated contiguous ``0..n-1`` by the
    topology registry), and all energy accounting lives in one shared
    :class:`~repro.energy.meter.MeterBank` whose per-node views populate
    :attr:`meters`.  Stacks a model does not build stay empty (e.g. no
    high radios in the sensor-only model).
    """

    def __init__(self) -> None:
        self.sim: Simulator | None = None
        self.layout: Layout | None = None
        self.meter_bank: MeterBank | None = None
        self.meters: list[NodeMeter] = []
        self.low_radios: list[LowPowerRadio] = []
        self.high_radios: list[HighPowerRadio] = []
        self.low_macs: list[SensorCsmaMac] = []
        self.high_macs: list[DcfMac] = []
        self.agents: list[typing.Any] = []
        self.sources: list[typing.Any] = []
        self.collector: SinkCollector | None = None
        self.mediums: list[Medium] = []
        #: Routing tables by tier name ("low"/"high") and the chosen
        #: sender set — recorded for the fault injector's epoch
        #: invalidation and partition checks.
        self.route_tables: dict[str, RoutingLike] = {}
        self.senders: list[int] = []


def select_senders(config: ScenarioConfig, sim: Simulator) -> list[int]:
    """Choose which nodes send: a seeded random sample of non-sink nodes.

    Nodes named in ``traffic_mix`` always send — naming a traffic source
    for a node that then stays silent would make the mix silently inert —
    and the remaining slots are sampled randomly.  With
    ``n_senders == n_nodes - 1`` (the paper's 35-sender point) every
    non-sink node sends, making the choice deterministic.
    """
    candidates = [node for node in range(config.n_nodes) if node != config.sink]
    if config.n_senders >= len(candidates):
        return candidates
    forced = [node for node, _name in config.traffic_mix]
    rng = sim.rng.stream("scenario.senders")
    sampled = rng.sample(
        [node for node in candidates if node not in forced],
        config.n_senders - len(forced),
    )
    return sorted(forced + sampled)


def _propagation_for(
    config: ScenarioConfig, sim: Simulator, layout: Layout, channel: str
) -> typing.Any:
    """The channel's propagation model, or ``None`` for the default.

    ``None`` (rather than an explicit unit-disc instance) keeps the
    no-spec path identical to the historical construction: no extra rng
    stream is created and the medium builds its own default.
    """
    if config.propagation is None:
        return None
    return build_propagation(
        config.propagation,
        layout,
        rng=sim.rng.stream(f"channel.{channel}.prop"),
    )


def _audibility_routing(
    layout: Layout, medium: Medium, rng: typing.Any, engine: str = ENGINE_EAGER
) -> RoutingLike:
    """Routing over the links the medium can actually carry this run.

    With a non-default propagation model the nominal range lies: a
    log-normal fade can mute a 40 m link for the whole run, and routing a
    flow across it would silently deliver nothing.  The medium's neighbor
    index *is* the per-run audibility, so build the routing graph from it
    — keeping only bidirectional links, since every tier's protocols need
    the reverse direction (CSMA acks, BCP's wakeup handshake).

    Both engines route over the same :class:`~repro.net.csr.CsrGraph`
    built from the bidirectional link list — networkx is out of the
    construction path entirely (the eager engine's CSR build is
    byte-compatible with its historical networkx one).
    """
    graph = _audibility_graph(layout, medium)
    if engine == ENGINE_LAZY:
        return LazyRoutingTable(graph, rng=rng)
    return RoutingTable(graph, rng=rng)


def _audibility_graph(layout: Layout, medium: Medium) -> CsrGraph:
    """The bidirectionally-audible link graph (see ``_audibility_routing``)."""
    links = [
        (a, b)
        for a in layout.node_ids
        for b in medium.neighbors(a)
        if a < b and medium.is_neighbor(b, a)
    ]
    return CsrGraph.from_links(layout.node_ids, links)


def _residual_reader(
    config: ScenarioConfig, built: "_BuiltNetwork"
) -> typing.Callable[[int], float]:
    """Node id → live remaining-battery fraction, for residual routing.

    Capacities come from the fault plan when it arms batteries (so the
    policy and the injector's death poll agree on the reservoir) and
    default to an AA pair otherwise.  The closure reads the built
    network's meter bank *live* — through the same flush-then-read helper
    the battery poll uses — so refreshed routes see exactly the depletion
    the injector bills.
    """
    plan = config.faults
    default_capacity = AA_PAIR_CAPACITY_J
    overrides: dict[int, float] = {}
    if plan is not None:
        if plan.battery_capacity_j is not None:
            default_capacity = plan.battery_capacity_j
        overrides = dict(plan.battery_overrides)

    def fraction(node: int) -> float:
        bank = built.meter_bank
        if bank is None:  # pragma: no cover - bank exists before routing
            return 1.0
        capacity = overrides.get(node, default_capacity)
        return live_residual_fraction(bank, built.high_radios, node, capacity)

    return fraction


def _policy_routing(
    config: ScenarioConfig,
    built: "_BuiltNetwork",
    graph: CsrGraph,
    layout: Layout,
    spec: RadioSpec,
    rng: typing.Any,
) -> DijkstraRoutingTable:
    """A cost-engine table for the configured non-default routing policy.

    The context is the per-tier flyweight every cost model draws from:
    the shared first-order energy model, this tier's on-air packet size,
    and the live residual reader (ignored by static policies).
    """
    context = RoutingPolicyContext(
        energy_model=FIRST_ORDER_RADIO_MODEL,
        packet_bits=(config.payload_bytes + spec.header_bytes)
        * BITS_PER_BYTE,
        residual_fraction=_residual_reader(config, built),
    )
    cost_model = build_cost_model(config.routing_policy, context)
    assert cost_model is not None  # POLICY_HOPS never reaches here
    return DijkstraRoutingTable(graph, cost_model, layout=layout, rng=rng)


def _build_low_stack(
    config: ScenarioConfig, sim: Simulator, built: _BuiltNetwork
) -> RoutingLike:
    layout = built.layout
    assert layout is not None
    loss_rng = sim.rng.stream("channel.low.loss")
    medium = Medium(
        sim,
        layout,
        name="low",
        loss=LossModel(config.loss_probability, loss_rng),
        capture_ratio=Medium.CC2420_CAPTURE_RATIO,
        propagation=_propagation_for(config, sim, layout, "low"),
    )
    built.mediums.append(medium)
    low_spec = config.low_spec
    meters = built.meters
    for node in range(config.n_nodes):
        radio = LowPowerRadio(sim, node, low_spec, medium, meters[node])
        built.low_radios.append(radio)
        built.low_macs.append(SensorCsmaMac(sim, radio, engine=config.mac_engine))
    engine = config.routing_engine()
    with phase("routing_build"):
        if config.routing_policy != POLICY_HOPS:
            # Cost-engine path: same connectivity graph the hops path
            # would route over, different metric.
            if config.propagation is not None:
                graph = _audibility_graph(layout, medium)
            else:
                graph = CsrGraph.from_layout(layout, config.low_spec.range_m)
            return _policy_routing(
                config, built, graph, layout, config.low_spec,
                rng=sim.rng.stream("routing.low"),
            )
        if config.propagation is not None:
            return _audibility_routing(
                layout, medium, rng=sim.rng.stream("routing.low"),
                engine=engine,
            )
        return build_routing(
            layout,
            config.low_spec.range_m,
            rng=sim.rng.stream("routing.low"),
            engine=engine,
        )


def _build_high_stack(
    config: ScenarioConfig, sim: Simulator, built: _BuiltNetwork
) -> RoutingLike:
    layout = built.layout
    assert layout is not None
    loss_rng = sim.rng.stream("channel.high.loss")
    medium = Medium(
        sim,
        layout,
        name="high",
        loss=LossModel(config.loss_probability, loss_rng),
        propagation=_propagation_for(config, sim, layout, "high"),
    )
    built.mediums.append(medium)
    meters = built.meters
    # The homogeneous fleet shares one spec object; only an explicit
    # assignment pays the per-node resolution.
    uniform_spec = (
        config.effective_high_spec() if config.high_radios is None else None
    )
    for node in range(config.n_nodes):
        spec = (
            uniform_spec
            if uniform_spec is not None
            else config.high_spec_for(node)
        )
        radio = HighPowerRadio(sim, node, spec, medium, meters[node])
        built.high_radios.append(radio)
        built.high_macs.append(DcfMac(sim, radio, engine=config.mac_engine))
    engine = config.routing_engine()
    with phase("routing_build"):
        uniform = config.high_radios is None and config.propagation is None
        if config.routing_policy != POLICY_HOPS:
            if uniform:
                graph = CsrGraph.from_layout(
                    layout, config.effective_high_spec().range_m
                )
            else:
                graph = _audibility_graph(layout, medium)
            return _policy_routing(
                config, built, graph, layout, config.effective_high_spec(),
                rng=sim.rng.stream("routing.high"),
            )
        if uniform:
            # Homogeneous fleet on the paper's channel: the historical
            # single-range construction.
            return build_routing(
                layout,
                config.effective_high_spec().range_m,
                rng=sim.rng.stream("routing.high"),
                engine=engine,
            )
        # Mixed fleets and/or shadowed channels: route over the links the
        # medium will actually carry (bidirectional audibility — the index
        # already accounts for per-node ranges and per-run link gains).
        return _audibility_routing(
            layout, medium, rng=sim.rng.stream("routing.high"), engine=engine
        )


def _check_sender_routes(
    config: ScenarioConfig,
    senders: typing.Sequence[int],
    tables: typing.Mapping[str, RoutingLike],
) -> None:
    """Fail fast (and helpfully) when a sender cannot reach the sink.

    The paper's grid is connected at the sensor range by construction, so
    this never fires for paper scenarios; composed deployments (random
    placements, shrunken ranges, mixed fleets) can produce partitioned
    tiers, and a clear error beats a mid-run RoutingError traceback.
    """
    for name, table in tables.items():
        unreachable = [
            sender
            for sender in senders
            if not table.has_route(sender, config.sink)
        ]
        if unreachable:
            raise ValueError(
                f"senders {unreachable} cannot reach sink {config.sink} over "
                f"the {name} radio tier: the deployment is partitioned at "
                "that tier's range.  Densify the layout, enlarge the field's "
                "connect_range_m (keep it within the radio range), or pick "
                "longer-range radios."
            )


def build_network(config: ScenarioConfig, sim: Simulator) -> _BuiltNetwork:
    """Construct the full network for ``config`` inside ``sim``.

    Per-node construction is flyweight-shaped: all class-level data (BCP
    config, routing tables, MAC parameters, delivery callbacks) is built
    once and shared, per-node energy state lives in one struct-of-arrays
    :class:`~repro.energy.meter.MeterBank`, and the loop that stamps out
    nodes allocates only each node's identity-bearing objects (radios,
    MACs, the agent shell).  That is what makes a 10k-node composed
    scenario a seconds-scale build (see ``repro bench``'s
    ``scenario-compose-10k`` case).
    """
    built = _BuiltNetwork()
    built.sim = sim
    built.layout = config.build_layout(sim)
    n_nodes = config.n_nodes
    built.meter_bank = MeterBank(n_nodes)
    built.meters = [built.meter_bank.meter(node) for node in range(n_nodes)]
    built.collector = SinkCollector(sim, config.sink)

    route_tables: dict[str, RoutingLike] = {}
    if config.model == MODEL_SENSOR:
        low_table = _build_low_stack(config, sim, built)
        route_tables["low"] = low_table
        for node in range(n_nodes):
            built.agents.append(
                ForwardingAgent(
                    sim,
                    node,
                    built.low_macs[node],
                    low_table,
                    built.collector.deliver,
                )
            )
    elif config.model == MODEL_WIFI:
        high_table = _build_high_stack(config, sim, built)
        route_tables["high"] = high_table
        for node in range(n_nodes):
            built.high_radios[node].wake()
            built.agents.append(
                ForwardingAgent(
                    sim,
                    node,
                    built.high_macs[node],
                    high_table,
                    built.collector.deliver,
                )
            )
    else:  # MODEL_DUAL
        low_table = _build_low_stack(config, sim, built)
        high_table = _build_high_stack(config, sim, built)
        route_tables["low"] = low_table
        route_tables["high"] = high_table
        address_map = AddressMap()
        for node in range(n_nodes):
            address_map.register_node(node, has_high_radio=True)
        # Two node classes exist in a paper scenario, so two shared
        # flyweights cover the whole fleet: the sink is the collection
        # point — packets addressed to it are consumed on arrival, never
        # re-buffered — so it advertises the flow control of a host-class
        # basestation (unbounded buffer) rather than reserving mote RAM
        # for data that never lands.  Everyone else shares one mote
        # config.  Specs are immutable by contract (see
        # :class:`~repro.core.bcp.BcpNodeSpec`).
        node_config = BcpConfig.for_burst_packets(
            config.burst_packets,
            packet_payload_bytes=config.payload_bytes,
            buffer_capacity_bytes=float(
                config.buffer_packets * config.payload_bytes
            ),
            wakeup_timeout_s=config.wakeup_timeout_s,
            receiver_idle_timeout_s=config.receiver_idle_timeout_s,
            idle_linger_s=config.idle_linger_s,
            flow_control=config.flow_control,
            shortcut_learning=config.shortcut_learning,
            shortcut_observation=config.shortcut_observation,
        )
        node_spec = BcpNodeSpec(
            sim=sim,
            config=node_config,
            low_routing=low_table,
            high_routing=high_table,
            deliver=built.collector.deliver,
            address_map=address_map,
        )
        sink_spec = dataclasses.replace(
            node_spec,
            config=dataclasses.replace(
                node_config, buffer_capacity_bytes=float("inf")
            ),
        )
        sink = config.sink
        low_macs, high_macs = built.low_macs, built.high_macs
        high_radios = built.high_radios
        for node in range(n_nodes):
            built.agents.append(
                BcpAgent.from_spec(
                    sink_spec if node == sink else node_spec,
                    node,
                    low_macs[node],
                    high_macs[node],
                    high_radios[node],
                )
            )

    built.route_tables = route_tables
    senders = select_senders(config, sim)
    built.senders = senders
    _check_sender_routes(config, senders, route_tables)
    for sender in senders:
        source = build_source(
            config.traffic_for(sender),
            sim,
            sender,
            built.agents[sender].submit,
            config,
        )
        built.sources.append(source)
    return built


def _collect_energy(
    config: ScenarioConfig, built: _BuiltNetwork
) -> dict[str, float]:
    low_component = f"radio.{config.low_spec.name}"
    ideal = header = full_low = high_full = 0.0
    for radio in built.high_radios:
        radio.flush_accounting()
    bank = built.meter_bank
    assert bank is not None
    # Node-major accumulation, each node's terms in its own first-charge
    # order: float addition is not associative, and this is exactly the
    # summation order of the historical per-node meters — the pinned
    # golden digests encode it to the last ulp.
    uniform_high = (
        f"radio.{config.effective_high_spec().name}"
        if config.high_radios is None
        else None
    )
    for node in range(config.n_nodes):
        ideal += bank.total_for(node, low_component, categories=("tx", "rx"))
        header_part = bank.total_for(
            node, low_component, categories=(CATEGORY_OVERHEAR_HEADER,)
        )
        body_part = bank.total_for(
            node, low_component, categories=(CATEGORY_OVERHEAR_BODY,)
        )
        header += header_part
        full_low += header_part + body_part
        # Heterogeneous fleets meter each node under its own NIC's
        # component name; resolve per node (one shared name when no
        # assignment is configured).
        high_component = (
            uniform_high
            if uniform_high is not None
            else f"radio.{config.high_spec_for(node).name}"
        )
        high_full += bank.total_for(node, high_component)
    energy = {
        ENERGY_SENSOR_IDEAL: ideal,
        ENERGY_SENSOR_HEADER: ideal + header,
        ENERGY_SENSOR_FULL: ideal + full_low,
        ENERGY_LOW_RADIO: ideal,
        ENERGY_HIGH_RADIO: high_full,
    }
    if config.model == MODEL_SENSOR:
        energy[ENERGY_TOTAL] = energy[ENERGY_SENSOR_IDEAL]
    elif config.model == MODEL_WIFI:
        energy[ENERGY_TOTAL] = high_full
    else:
        # Section 4: the dual-radio model charges the sensor radio ideally
        # (tx+rx, including relayed control) and the 802.11 radio fully.
        energy[ENERGY_TOTAL] = ideal + high_full
    return energy


def _collect_counters(built: _BuiltNetwork) -> dict[str, float]:
    counters: dict[str, float] = {}

    def bump(name: str, value: float) -> None:
        counters[name] = counters.get(name, 0.0) + value

    for medium in built.mediums:
        prefix = f"medium.{medium.name}"
        bump(f"{prefix}.sent", medium.frames_sent)
        bump(f"{prefix}.delivered", medium.frames_delivered)
        bump(f"{prefix}.collided", medium.frames_collided)
        bump(f"{prefix}.lost", medium.frames_lost)
    for mac in built.low_macs + built.high_macs:
        bump("mac.retransmissions", mac.retransmissions)
        bump("mac.sent_failed", mac.sent_failed)
        bump("mac.queue_drops", mac.queue_drops)
        bump("mac.acks_dropped", mac.acks_dropped)
    for agent in built.agents:
        if isinstance(agent, BcpAgent):
            stats = agent.stats
            bump("bcp.wakeups", stats.wakeups_sent)
            bump("bcp.acks", stats.acks_sent)
            bump("bcp.handshake_failures", stats.handshakes_failed)
            bump("bcp.bursts", stats.bursts_completed)
            bump("bcp.buffer_drops", stats.packets_dropped_buffer)
            bump("bcp.mac_losses", stats.packets_lost_mac)
            bump("bcp.receiver_timeouts", stats.receiver_timeouts)
            if agent.shortcuts is not None:
                bump("bcp.shortcuts_learned", agent.shortcuts.shortcuts_learned)
        elif isinstance(agent, ForwardingAgent):
            bump("fwd.dropped", agent.packets_dropped)
            bump("fwd.unroutable", agent.packets_unroutable)
    return counters


def run_scenario(config: ScenarioConfig) -> RunResult:
    """Run one scenario to completion and extract the paper's metrics.

    When a :func:`repro.perf.phases.collect_phases` collector is active,
    the run reports ``network_build`` (which includes ``routing_build``)
    and ``sim_loop`` wall-clock phases into it.
    """
    sim = Simulator(seed=config.seed, scheduler=config.scheduler)
    with phase("network_build"):
        built = build_network(config, sim)
    # A zero/absent plan skips the injector entirely: the no-fault path
    # builds no batteries, schedules no events and adds no counters, so
    # the pinned golden digests are untouched byte for byte.
    injector = None
    if config.faults is not None and not config.faults.is_zero:
        injector = FaultInjector(sim, config, built, config.faults)
    with phase("sim_loop"):
        sim.run(until=config.sim_time_s)
    generated = float(
        sum(source.stats.bits_generated for source in built.sources)
    )
    collector = built.collector
    assert collector is not None
    counters = _collect_counters(built)
    if injector is not None:
        counters.update(injector.counters())
    return RunResult(
        model=config.model,
        sim_time_s=config.sim_time_s,
        generated_bits=generated,
        delivered_bits=float(collector.bits_delivered),
        mean_delay_s=collector.mean_delay_s,
        max_delay_s=collector.max_delay_s,
        energy_j=_collect_energy(config, built),
        counters=counters,
        mean_hops=collector.mean_hops,
    )


def replica_configs(config: ScenarioConfig, n_runs: int) -> list[ScenarioConfig]:
    """The ``n_runs`` replica configs of one cell: consecutive seeds.

    Each replica is a complete, independent config — the unit of work the
    runner executes and the cache keys on.
    """
    if n_runs < 1:
        raise ValueError("need at least one run")
    return [config.replace(seed=config.seed + offset) for offset in range(n_runs)]


def run_replicated(
    config: ScenarioConfig,
    n_runs: int = 20,
    energy_key: str = ENERGY_TOTAL,
    runner: "SweepRunner | None" = None,
) -> tuple[list[RunResult], ReplicatedSummary]:
    """Run ``n_runs`` seeds of ``config`` and summarize with 95% CIs.

    ``runner`` may be a :class:`~repro.runner.SweepRunner` to parallelize
    or cache the replicas; the default serial runner is bit-identical to
    in-process execution.
    """
    from repro.runner.executor import SweepRunner

    runner = runner or SweepRunner()
    results = runner.map(
        run_scenario,
        replica_configs(config, n_runs),
        describe=lambda _i, c: f"{c.model} senders={c.n_senders} seed={c.seed}",
    )
    return results, summarize_runs(results, energy_key=energy_key)
