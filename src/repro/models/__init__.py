"""The Section 4 evaluation models and scenario harness."""

from repro.models.forwarding import ForwardingAgent
from repro.models.sweeps import (
    LABEL_SENSOR,
    LABEL_WIFI,
    SweepCell,
    SweepData,
    SweepScale,
    dual_label,
    energy_delay_points,
    energy_rows,
    goodput_rows,
    run_sweep,
)
from repro.models.scenario import (
    MODEL_DUAL,
    MODEL_SENSOR,
    MODEL_WIFI,
    PAPER_BURST_SIZES,
    PAPER_SENDER_COUNTS,
    RadioAssignment,
    ScenarioConfig,
    build_network,
    multi_hop_config,
    run_replicated,
    run_scenario,
    select_senders,
    single_hop_config,
)

__all__ = [
    "ForwardingAgent",
    "MODEL_DUAL",
    "MODEL_SENSOR",
    "MODEL_WIFI",
    "PAPER_BURST_SIZES",
    "PAPER_SENDER_COUNTS",
    "RadioAssignment",
    "ScenarioConfig",
    "build_network",
    "multi_hop_config",
    "run_replicated",
    "run_scenario",
    "select_senders",
    "single_hop_config",
]
