"""Shared registry and spec machinery for the scenario-composition axes.

The topology, propagation and traffic registries all need the same three
things: register implementations under stable string names (the names end
up inside :class:`~repro.models.scenario.ScenarioConfig` and therefore in
cache keys), look them up with a helpful error, and enumerate themselves
for ``repro scenarios list``.  :class:`Registry` provides exactly that;
:class:`ParamSpec` is the common declarative form (a registered kind plus
sorted ``(key, value)`` parameters, hashable plain data) that the
topology and propagation spec types derive from — one parser, one
describe format, one CLI syntax.
"""

from __future__ import annotations

import dataclasses
import typing

T = typing.TypeVar("T")

#: Scalar parameter values a spec may carry (tuples allow nested plain
#: data such as inlined positions).
ParamValue = typing.Union[int, float, str, tuple]


def parse_param_value(text: str) -> ParamValue:
    """Parse a CLI parameter value: int, then float, then plain string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclasses.dataclass(frozen=True)
class ParamSpec:
    """A registered kind plus parameters, in hashable plain-data form.

    Subclasses (``TopologySpec``, ``PropagationSpec``) only pin their
    default ``kind`` and an axis label for error messages; construction,
    CLI parsing and rendering are shared here.
    """

    kind: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    #: What the spec names, for parse errors ("topology", ...).
    axis: typing.ClassVar[str] = "spec"

    @classmethod
    def of(cls, kind: str, **params: ParamValue) -> "typing.Self":
        """Build a spec with keyword parameters (stored sorted by name)."""
        return cls(kind, tuple(sorted(params.items())))

    @classmethod
    def parse(cls, text: str) -> "typing.Self":
        """Parse CLI syntax ``kind`` or ``kind:key=value,key=value``.

        Values parse as int, then float, then string; e.g.
        ``uniform-random:n=36,width_m=200`` or ``log-normal:sigma_db=6``.
        """
        kind, _, raw = text.partition(":")
        kind = kind.strip()
        if not kind:
            raise ValueError(f"empty {cls.axis} in {text!r}")
        params: dict[str, ParamValue] = {}
        if raw.strip():
            for pair in raw.split(","):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"bad parameter {pair!r} in {text!r}; expected key=value"
                    )
                params[key.strip()] = parse_param_value(value.strip())
        return cls.of(kind, **params)

    def kwargs(self) -> dict[str, ParamValue]:
        """The parameters as a keyword dict."""
        return dict(self.params)

    def describe(self) -> str:
        """Compact human form, e.g. ``uniform-random(n=36, width_m=200)``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


@dataclasses.dataclass(frozen=True)
class Entry(typing.Generic[T]):
    """One registered implementation.

    Attributes
    ----------
    name:
        The stable registry key (appears in configs and cache keys).
    value:
        The registered object (a provider/factory, axis-specific).
    summary:
        One-line human description for ``repro scenarios list``.
    params:
        ``name=default`` strings documenting the accepted parameters.
    """

    name: str
    value: T
    summary: str = ""
    params: tuple[str, ...] = ()


class Registry(typing.Generic[T]):
    """Ordered name → :class:`Entry` mapping with friendly lookup errors."""

    def __init__(self, kind: str):
        #: What this registry holds ("topology", ...); used in error text.
        self.kind = kind
        self._entries: dict[str, Entry[T]] = {}

    def register(
        self,
        name: str,
        value: T,
        summary: str = "",
        params: typing.Sequence[str] = (),
    ) -> T:
        """Register ``value`` under ``name`` (duplicate names are bugs)."""
        if name in self._entries:
            raise ValueError(f"{self.kind} {name!r} is already registered")
        self._entries[name] = Entry(name, value, summary, tuple(params))
        return value

    def get(self, name: str) -> T:
        """The registered value for ``name``.

        Raises
        ------
        KeyError
            With the list of valid names, so a CLI typo is self-explaining.
        """
        try:
            return self._entries[name].value
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def entry(self, name: str) -> Entry[T]:
        """The full :class:`Entry` for ``name`` (same errors as :meth:`get`)."""
        self.get(name)  # raise the friendly KeyError on typos
        return self._entries[name]

    def names(self) -> list[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def entries(self) -> list[Entry[T]]:
        """All entries in registration order."""
        return list(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
