"""Routing policies: pluggable link-cost models behind a registry.

Routing used to be hardwired to min-hop BFS.  This module turns the
route metric into an axis, mirroring the topology/propagation/traffic
registries: a policy names a :class:`LinkCostModel` factory, the
scenario builder resolves it, and the Dijkstra engine in
:mod:`repro.net.routing` consumes whatever costs the model produces.

Three policies ship:

``hops``
    The byte-identity default.  Its registry value is ``None`` — the
    scenario builder keeps the existing BFS engines (eager/lazy) on this
    path untouched, so every pinned golden digest is preserved bit for
    bit.
``tx-energy``
    Static distance-dependent cost from the first-order radio model
    ``E_ELEC + E_AMP * d^alpha``: routes prefer several short hops over
    one long one once the amplifier term dominates.
``residual-energy``
    ``tx-energy`` scaled by the transmitting node's live battery
    residual (read through :func:`repro.energy.residual.
    live_residual_fraction`, the same flush-then-read the fault
    injector's battery poll uses).  Depleted relays look expensive, so
    load shifts off them *before* they die — the max-lifetime heuristic.

Cost model contract
-------------------

A cost model supplies two layers:

* ``edge_costs(csr, layout)`` — one static, symmetric cost per CSR slot
  (parallel to ``csr.indices``): the price of crossing that edge.
* ``node_factors(csr)`` — optional per-node *transmitter* multipliers,
  re-read whenever routes are refreshed.  ``None`` means uniform.

Relaxing neighbor ``u`` from settled node ``v`` on a tree rooted at the
destination costs ``dist[v] + factor[u] * edge_cost[slot]``: trees grow
from the destination outward, so the node *entering* the tree is the one
that would transmit across the edge, and its factor scales the step.
Distances are symmetric, so reading the slot cost from row ``v`` prices
the same link.
"""

from __future__ import annotations

import typing

from repro.energy.radio_specs import FIRST_ORDER_RADIO_MODEL, RadioEnergyModel
from repro.registry import Registry

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.csr import CsrGraph
    from repro.topology.layout import Layout

POLICY_HOPS = "hops"
POLICY_TX_ENERGY = "tx-energy"
POLICY_RESIDUAL = "residual-energy"

#: Residual fractions below this clamp are treated as "effectively dead";
#: keeps the cost multiplier finite.  Mirrors the floor in
#: :func:`repro.energy.residual.live_residual_fraction`.
RESIDUAL_FLOOR = 1e-6


class LinkCostModel(typing.Protocol):
    """What the Dijkstra engine needs from a routing policy."""

    #: True when node factors change during a run (live battery reads) and
    #: route tables should honour mid-epoch ``refresh_costs()`` requests.
    dynamic: bool

    def edge_costs(
        self, csr: "CsrGraph", layout: "Layout | None"
    ) -> list[float]:
        """Static cost per CSR slot, parallel to ``csr.indices``."""
        ...

    def node_factors(self, csr: "CsrGraph") -> list[float] | None:
        """Per-node transmitter multipliers, or ``None`` for uniform."""
        ...


class TxEnergyCost:
    """Distance-dependent transmit energy per edge (static)."""

    dynamic = False

    def __init__(
        self,
        energy_model: RadioEnergyModel = FIRST_ORDER_RADIO_MODEL,
        packet_bits: int = 320,
    ) -> None:
        self.energy_model = energy_model
        self.packet_bits = packet_bits

    def edge_costs(
        self, csr: "CsrGraph", layout: "Layout | None"
    ) -> list[float]:
        if layout is None:
            raise ValueError("tx-energy routing needs a layout for distances")
        ids = csr.ids
        indptr = csr.indptr
        indices = csr.indices
        model = self.energy_model
        bits = self.packet_bits
        costs = [0.0] * len(indices)
        for row in range(len(ids)):
            src = ids[row]
            for slot in range(indptr[row], indptr[row + 1]):
                dst = ids[indices[slot]]
                costs[slot] = model.tx_cost_j(bits, layout.distance(src, dst))
        return costs

    def node_factors(self, csr: "CsrGraph") -> list[float] | None:
        return None


class ResidualEnergyCost:
    """Transmit energy scaled by the transmitter's live battery residual."""

    dynamic = True

    def __init__(
        self,
        residual_fraction: typing.Callable[[int], float],
        energy_model: RadioEnergyModel = FIRST_ORDER_RADIO_MODEL,
        packet_bits: int = 320,
    ) -> None:
        self._base = TxEnergyCost(energy_model, packet_bits)
        self._residual_fraction = residual_fraction

    def edge_costs(
        self, csr: "CsrGraph", layout: "Layout | None"
    ) -> list[float]:
        return self._base.edge_costs(csr, layout)

    def node_factors(self, csr: "CsrGraph") -> list[float] | None:
        factors = [1.0] * len(csr.ids)
        for row, node in enumerate(csr.ids):
            fraction = self._residual_fraction(node)
            factors[row] = 1.0 / max(fraction, RESIDUAL_FLOOR)
        return factors


class RoutingPolicyContext(typing.NamedTuple):
    """Everything a policy factory may need, shared flyweight-style.

    One context is built per scenario tier and handed to whichever
    factory the configured policy names; policies ignore fields they do
    not use.  ``residual_fraction`` maps node id to remaining battery
    fraction and is only required by ``residual-energy``.
    """

    energy_model: RadioEnergyModel = FIRST_ORDER_RADIO_MODEL
    packet_bits: int = 320
    residual_fraction: typing.Callable[[int], float] | None = None


def _make_tx_energy(context: RoutingPolicyContext) -> LinkCostModel:
    return TxEnergyCost(context.energy_model, context.packet_bits)


def _make_residual(context: RoutingPolicyContext) -> LinkCostModel:
    if context.residual_fraction is None:
        raise ValueError(
            "residual-energy routing needs a residual_fraction reader"
        )
    return ResidualEnergyCost(
        context.residual_fraction, context.energy_model, context.packet_bits
    )


#: The routing-policy axis.  Values are cost-model factories taking a
#: :class:`RoutingPolicyContext`; the ``hops`` entry is ``None`` on
#: purpose — it marks "keep the BFS engines", the byte-identity path.
ROUTING_POLICIES: Registry = Registry("routing policy")
ROUTING_POLICIES.register(
    POLICY_HOPS,
    None,
    summary="minimum hop count (BFS; the byte-identity default)",
)
ROUTING_POLICIES.register(
    POLICY_TX_ENERGY,
    _make_tx_energy,
    summary="minimum transmit energy: E_ELEC + E_AMP*d^alpha per hop",
)
ROUTING_POLICIES.register(
    POLICY_RESIDUAL,
    _make_residual,
    summary="tx energy / live battery residual: spares depleted relays",
)

ROUTING_POLICY_NAMES: tuple[str, ...] = tuple(ROUTING_POLICIES.names())


def build_cost_model(
    policy: str, context: RoutingPolicyContext
) -> LinkCostModel | None:
    """Resolve ``policy`` to a cost model (``None`` for ``hops``)."""
    factory = ROUTING_POLICIES.get(policy)
    if factory is None:
        return None
    return factory(context)
