"""Network-layer packet types.

A :class:`DataPacket` is the unit the application generates (the paper's
32-byte sensor data packet) and the unit BCP buffers, bundles into 802.11
frames, and reassembles.  Control messages (BCP's WAKEUP / WAKEUP-ACK) are
defined in :mod:`repro.core.messages`; at this layer they are just payloads
with a size.
"""

from __future__ import annotations

import dataclasses
import itertools

_packet_ids = itertools.count(1)


@dataclasses.dataclass
class DataPacket:
    """One application data packet.

    Attributes
    ----------
    src / dst:
        Originating node and final destination (the sink).
    payload_bits:
        Application payload size (the paper's sensor packets carry 32 B).
    created_s:
        Generation timestamp; end-to-end delay is measured against it.
    packet_id:
        Globally unique id (tracing and duplicate detection in tests).
    hops:
        Incremented at every forwarding step (diagnostics).
    """

    src: int
    dst: int
    payload_bits: int
    created_s: float
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ValueError("data packets must carry a positive payload")

    @property
    def payload_bytes(self) -> float:
        """Payload size in bytes."""
        return self.payload_bits / 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DataPacket #{self.packet_id} {self.src}->{self.dst} "
            f"{self.payload_bits}b t={self.created_s:.3f}>"
        )
