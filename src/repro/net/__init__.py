"""Network layer: packets, dual-radio addressing, routing, shortcuts."""

from repro.net.addressing import (
    HIGH_INTERFACE,
    LOW_INTERFACE,
    AddressMap,
    format_eui48,
    format_short_address,
)
from repro.net.csr import CsrGraph
from repro.net.packets import DataPacket
from repro.net.policy import (
    POLICY_HOPS,
    POLICY_RESIDUAL,
    POLICY_TX_ENERGY,
    ROUTING_POLICIES,
    ROUTING_POLICY_NAMES,
    LinkCostModel,
    ResidualEnergyCost,
    RoutingPolicyContext,
    TxEnergyCost,
    build_cost_model,
)
from repro.net.routing import (
    DijkstraRoutingTable,
    LazyRoutingTable,
    RoutingError,
    RoutingLike,
    RoutingTable,
    build_routing,
    tree_depths,
)
from repro.net.shortcut import ShortcutLearner

__all__ = [
    "AddressMap",
    "CsrGraph",
    "DataPacket",
    "DijkstraRoutingTable",
    "HIGH_INTERFACE",
    "LOW_INTERFACE",
    "LazyRoutingTable",
    "LinkCostModel",
    "POLICY_HOPS",
    "POLICY_RESIDUAL",
    "POLICY_TX_ENERGY",
    "ROUTING_POLICIES",
    "ROUTING_POLICY_NAMES",
    "ResidualEnergyCost",
    "RoutingError",
    "RoutingLike",
    "RoutingTable",
    "RoutingPolicyContext",
    "ShortcutLearner",
    "TxEnergyCost",
    "build_cost_model",
    "build_routing",
    "format_eui48",
    "format_short_address",
    "tree_depths",
]
