"""Network layer: packets, dual-radio addressing, routing, shortcuts."""

from repro.net.addressing import (
    HIGH_INTERFACE,
    LOW_INTERFACE,
    AddressMap,
    format_eui48,
    format_short_address,
)
from repro.net.csr import CsrGraph
from repro.net.packets import DataPacket
from repro.net.routing import (
    LazyRoutingTable,
    RoutingError,
    RoutingLike,
    RoutingTable,
    build_routing,
    tree_depths,
)
from repro.net.shortcut import ShortcutLearner

__all__ = [
    "AddressMap",
    "CsrGraph",
    "DataPacket",
    "HIGH_INTERFACE",
    "LOW_INTERFACE",
    "LazyRoutingTable",
    "RoutingError",
    "RoutingLike",
    "RoutingTable",
    "ShortcutLearner",
    "build_routing",
    "format_eui48",
    "format_short_address",
    "tree_depths",
]
