"""Route shortcut learning for the high-power radio (paper Section 3).

"To reduce route discovery overhead of the high-power radios, we advocate
using the existing routes over the low-power radios initially and adapting
these routes as necessary, similar to route optimizations in [DSR].  ...
the high-power radio on the sender side needs to remain on to hear its
packet being forwarded by the intermediate nodes.  The last node that
forwards the packet is set as the next-hop for the following transmissions."

:class:`ShortcutLearner` implements that optimization: it starts from the
low-power route and, whenever the sender overhears one of its own packets
being forwarded by a node further down the path, it records the *farthest*
overheard forwarder as the new next hop.  The dual-radio scenarios can run
with learning on or off (an ablation the benchmarks exercise); with the
paper's static trees learning converges after the first burst along a path.
"""

from __future__ import annotations


from repro.net.routing import RoutingLike


class ShortcutLearner:
    """Per-node high-power next-hop cache with DSR-style shortening.

    Parameters
    ----------
    node_id:
        The owning (sender) node.
    low_table / high_table:
        Routing tables of the low-power and high-power networks.  The low
        table provides the initial route; the high table bounds which
        shortcuts are reachable in one high-power hop.
    """

    def __init__(
        self,
        node_id: int,
        low_table: RoutingLike,
        high_table: RoutingLike,
    ):
        self.node_id = node_id
        self.low_table = low_table
        self.high_table = high_table
        self._learned: dict[int, int] = {}
        self.shortcuts_learned = 0

    def next_hop(self, dst: int) -> int:
        """Current high-power next hop toward ``dst``.

        Prefers a learned shortcut; otherwise falls back to the low-power
        route's next hop (the paper's "use existing routes initially").
        """
        learned = self._learned.get(dst)
        if learned is not None:
            return learned
        return self.low_table.next_hop(self.node_id, dst)

    def observe_forwarding(self, dst: int, forwarder: int) -> bool:
        """Record that ``forwarder`` was overheard relaying our packet to ``dst``.

        Only adopts ``forwarder`` when it is (a) directly reachable over the
        high-power radio and (b) strictly closer to ``dst`` than the current
        next hop.  Returns whether a new shortcut was learned.
        """
        if forwarder == self.node_id:
            return False
        if not self.high_table.has_edge(self.node_id, forwarder):
            return False
        current = self.next_hop(dst)
        if forwarder == current:
            return False
        current_remaining = self._remaining(current, dst)
        candidate_remaining = self._remaining(forwarder, dst)
        if candidate_remaining < current_remaining:
            self._learned[dst] = forwarder
            self.shortcuts_learned += 1
            return True
        return False

    def _remaining(self, via: int, dst: int) -> int:
        if via == dst:
            return 0
        if not self.low_table.has_route(via, dst):
            return len(self.low_table) + 1
        return self.low_table.hops(via, dst)

    def has_shortcut(self, dst: int) -> bool:
        """Whether a shortcut toward ``dst`` has been learned."""
        return dst in self._learned

    def forget(self, dst: int) -> None:
        """Drop the learned shortcut for ``dst`` (e.g. after delivery failure)."""
        self._learned.pop(dst, None)
