"""Dual-radio address mapping (paper Section 3, sender-side MAC interface).

"BCP needs to be able to map the low-power and high-power radio addresses
for the receiver."  Each node has one address per radio interface; the
:class:`AddressMap` resolves a node id to the address of a given interface
and back.  In the simulator addresses are synthetic but structurally
faithful: sensor interfaces get 16-bit-style short addresses, 802.11
interfaces get EUI-48-style strings, and the lookups BCP performs before a
handshake go through this table exactly as a real implementation's would.
"""

from __future__ import annotations


#: Interface names used throughout the library.
LOW_INTERFACE = "low"
HIGH_INTERFACE = "high"


class AddressMap:
    """Bidirectional node-id ↔ per-interface address table."""

    def __init__(self) -> None:
        self._by_node: dict[tuple[int, str], str] = {}
        self._by_address: dict[str, tuple[int, str]] = {}

    def register(self, node_id: int, interface: str, address: str) -> None:
        """Bind ``address`` to ``(node_id, interface)``.

        Raises
        ------
        ValueError
            If the node already has an address on that interface or the
            address is already bound elsewhere.
        """
        key = (node_id, interface)
        if key in self._by_node:
            raise ValueError(f"node {node_id} already has a {interface} address")
        if address in self._by_address:
            raise ValueError(f"address {address!r} is already registered")
        self._by_node[key] = address
        self._by_address[address] = key

    def register_node(
        self, node_id: int, has_high_radio: bool = True
    ) -> None:
        """Register synthetic addresses for a node's interfaces."""
        self.register(node_id, LOW_INTERFACE, format_short_address(node_id))
        if has_high_radio:
            self.register(node_id, HIGH_INTERFACE, format_eui48(node_id))

    def address_of(self, node_id: int, interface: str) -> str:
        """The address of ``node_id`` on ``interface`` (KeyError if absent)."""
        return self._by_node[(node_id, interface)]

    def node_of(self, address: str) -> int:
        """The node owning ``address`` (KeyError if unknown)."""
        return self._by_address[address][0]

    def has_interface(self, node_id: int, interface: str) -> bool:
        """Whether ``node_id`` has an address on ``interface``."""
        return (node_id, interface) in self._by_node

    def __len__(self) -> int:
        return len(self._by_address)


def format_short_address(node_id: int) -> str:
    """IEEE 802.15.4-style 16-bit short address for sensor interfaces."""
    if not 0 <= node_id <= 0xFFFF:
        raise ValueError(f"node id {node_id} does not fit a short address")
    return f"0x{node_id:04x}"


def format_eui48(node_id: int) -> str:
    """EUI-48-style MAC address for 802.11 interfaces."""
    if not 0 <= node_id <= 0xFFFFFFFF:
        raise ValueError(f"node id {node_id} does not fit the EUI-48 scheme")
    octets = [0x02, 0x11, (node_id >> 24) & 0xFF, (node_id >> 16) & 0xFF,
              (node_id >> 8) & 0xFF, node_id & 0xFF]
    return ":".join(f"{octet:02x}" for octet in octets)
