"""Compact CSR-style adjacency for the routing hot path.

The routing engines only need "who are node X's neighbors, in ascending id
order" — a question networkx answers through layers of dict-of-dicts.  A
:class:`CsrGraph` flattens the whole adjacency into two int lists (the
classic compressed-sparse-row layout): ``indices[indptr[i]:indptr[i + 1]]``
are the neighbor *indexes* of the node with index ``i``, sorted ascending.
Node ids are mapped onto ``0..n-1`` in ascending id order, so index order
and id order agree — a BFS over indexes breaks ties exactly like one over
sorted ids.

Builders cover the three places routing graphs come from:

* :meth:`CsrGraph.from_layout` — a uniform radio range over a
  :class:`~repro.topology.layout.Layout`, found with a spatial hash
  (O(n·k) for k candidates per cell neighborhood) instead of the O(n²)
  pairwise scan ``Layout.graph`` performs.  Edge-for-edge identical to
  ``layout.graph(range_m)`` (same ``in_range`` tolerance).
* :meth:`CsrGraph.from_links` — an explicit link list, e.g. the
  bidirectionally-audible links a :class:`~repro.channel.medium.Medium`'s
  neighbor index reports for a shadowed channel.
* :meth:`CsrGraph.from_networkx` — any existing connectivity graph (tests,
  fallback interop).
"""

from __future__ import annotations

import bisect
import math
import typing

from repro.topology.geometry import RANGE_EPSILON_M

if typing.TYPE_CHECKING:  # pragma: no cover - type-only imports
    import networkx

    from repro.topology.layout import Layout


class CsrGraph:
    """An immutable undirected graph over int node ids, stored as CSR arrays.

    Attributes
    ----------
    ids:
        All node ids, ascending; ``ids[i]`` is the id of index ``i``.
    indptr / indices:
        CSR layout in *index* space; every row is sorted ascending.
    """

    __slots__ = ("ids", "indptr", "indices", "_index_of")

    def __init__(
        self,
        ids: typing.Sequence[int],
        neighbors_by_id: typing.Mapping[int, typing.Sequence[int]],
    ):
        self.ids: tuple[int, ...] = tuple(sorted(ids))
        self._index_of: dict[int, int] = {
            node: i for i, node in enumerate(self.ids)
        }
        index_of = self._index_of
        indptr = [0]
        indices: list[int] = []
        for node in self.ids:
            row = sorted(index_of[other] for other in neighbors_by_id.get(node, ()))
            indices.extend(row)
            indptr.append(len(indices))
        self.indptr: list[int] = indptr
        self.indices: list[int] = indices

    # -- builders --------------------------------------------------------

    @classmethod
    def from_layout(cls, layout: "Layout", range_m: float) -> "CsrGraph":
        """Connectivity at a uniform ``range_m``, via a spatial hash.

        Produces exactly the edge set of ``layout.graph(range_m)`` without
        the O(n²) pairwise distance scan.
        """
        # Cells are sized to in_range()'s *inclusive* reach (nominal range
        # plus the boundary epsilon): a link the predicate accepts then
        # never spans more than one cell per axis, so the one-cell window
        # below cannot miss grid neighbors placed at exactly the range.
        cell = max(range_m + RANGE_EPSILON_M, 1e-9)
        limit = range_m + RANGE_EPSILON_M
        node_ids = tuple(layout.node_ids)
        position = layout.position
        positions = {node: position(node) for node in node_ids}
        floor, hypot = math.floor, math.hypot
        buckets: dict[tuple[int, int], list[int]] = {}
        for node, pos in positions.items():
            buckets.setdefault(
                (floor(pos.x / cell), floor(pos.y / cell)), []
            ).append(node)
        adjacency: dict[int, list[int]] = {node: [] for node in node_ids}
        # Each unordered pair is tested exactly once: within a bucket, and
        # against the four "forward" neighbor buckets (the other four are
        # covered when those buckets take their turn).  The distance test
        # is ``hypot(dx, dy) <= limit`` — the same arithmetic as
        # ``in_range`` — so the edge set stays bit-identical to the O(n²)
        # ``layout.graph(range_m)`` scan.
        forward = ((1, -1), (1, 0), (1, 1), (0, 1))
        for (cx, cy), members in buckets.items():
            for i, a in enumerate(members):
                pa = positions[a]
                ax, ay = pa.x, pa.y
                row_a = adjacency[a]
                for b in members[i + 1 :]:
                    pb = positions[b]
                    if hypot(ax - pb.x, ay - pb.y) <= limit:
                        row_a.append(b)
                        adjacency[b].append(a)
            for dx, dy in forward:
                others = buckets.get((cx + dx, cy + dy))
                if not others:
                    continue
                for a in members:
                    pa = positions[a]
                    ax, ay = pa.x, pa.y
                    row_a = adjacency[a]
                    for b in others:
                        pb = positions[b]
                        if hypot(ax - pb.x, ay - pb.y) <= limit:
                            row_a.append(b)
                            adjacency[b].append(a)
        return cls(node_ids, adjacency)

    @classmethod
    def from_links(
        cls,
        node_ids: typing.Iterable[int],
        links: typing.Iterable[tuple[int, int]],
    ) -> "CsrGraph":
        """Graph over ``node_ids`` with the given undirected ``links``."""
        adjacency: dict[int, list[int]] = {node: [] for node in node_ids}
        for a, b in links:
            adjacency[a].append(b)
            adjacency[b].append(a)
        return cls(tuple(adjacency), adjacency)

    @classmethod
    def from_networkx(cls, graph: "networkx.Graph") -> "CsrGraph":
        """Flatten an existing networkx connectivity graph."""
        return cls(
            tuple(graph.nodes),
            {node: list(graph.neighbors(node)) for node in graph.nodes},
        )

    # -- queries ---------------------------------------------------------

    @property
    def n(self) -> int:
        """Node count."""
        return len(self.ids)

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return len(self.indices) // 2

    @property
    def edges(self) -> list[tuple[int, int]]:
        """All undirected edges as ``(a, b)`` id pairs with ``a < b``.

        Property (not a method) to mirror ``networkx.Graph.edges``, so
        graph-shaped consumers can iterate either representation.
        """
        ids, indptr, indices = self.ids, self.indptr, self.indices
        return [
            (ids[i], ids[j])
            for i in range(len(ids))
            for j in indices[indptr[i] : indptr[i + 1]]
            if i < j
        ]

    def index(self, node_id: int) -> int:
        """The CSR index of ``node_id`` (KeyError if absent)."""
        return self._index_of[node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index_of

    def __len__(self) -> int:
        return len(self.ids)

    def neighbor_ids(self, node_id: int) -> list[int]:
        """Neighbor ids of ``node_id``, ascending."""
        i = self._index_of[node_id]
        ids = self.ids
        return [ids[j] for j in self.indices[self.indptr[i] : self.indptr[i + 1]]]

    def has_edge(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are directly linked (O(log degree))."""
        ia = self._index_of.get(a)
        ib = self._index_of.get(b)
        if ia is None or ib is None:
            return False
        lo, hi = self.indptr[ia], self.indptr[ia + 1]
        j = bisect.bisect_left(self.indices, ib, lo, hi)
        return j < hi and self.indices[j] == ib
