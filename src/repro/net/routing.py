"""Static shortest-path routing over a radio's connectivity graph.

Section 4.1: "To decouple the routing effects on performance, two separate
trees that go over sensor and IEEE 802.11 radios are built."  We generalize
the collection tree to an all-pairs next-hop table (computed once from the
connectivity graph with networkx BFS) because BCP's wake-up handshake also
routes *away* from the sink: the WAKEUP travels sender → receiver and the
WAKEUP-ACK travels back.

Tie-breaking between equal-length paths is deterministic by default
(lowest neighbor id).  On a perfectly regular grid that concentrates every
flow onto one row — a worst-case "backbone" that no real deployment's
collection tree exhibits — so the evaluation passes a seeded ``rng`` to
spread equal-cost routes across branches while keeping runs reproducible.
"""

from __future__ import annotations

import typing

import networkx

from repro.topology.layout import Layout


class RoutingError(Exception):
    """Raised when no route exists for a requested (src, dst) pair."""


class RoutingTable:
    """All-pairs next-hop routing over one connectivity graph.

    Parameters
    ----------
    graph:
        Undirected connectivity graph (e.g. from :meth:`Layout.graph`).
    rng:
        Optional ``random.Random``-like stream; when given, ties between
        equal-cost parents break uniformly at random (deterministically
        for a seeded stream) instead of by lowest node id.

    Notes
    -----
    Routes minimize hop count.  ``next_hop(u, v)`` is the neighbor of ``u``
    on the chosen shortest path to ``v``.
    """

    def __init__(self, graph: "networkx.Graph", rng: typing.Any = None):
        self.graph = graph
        self._rng = rng
        self._next_hop: dict[tuple[int, int], int] = {}
        self._hops: dict[tuple[int, int], int] = {}
        self._build()

    def _neighbor_order(self, node: int) -> list[int]:
        neighbors = sorted(self.graph.neighbors(node))
        if self._rng is not None:
            self._rng.shuffle(neighbors)
        return neighbors

    def _build(self) -> None:
        # BFS from every destination; parent choice order decides how ties
        # break (sorted = deterministic, shuffled = load-spreading).
        for dst in sorted(self.graph.nodes):
            parents = {dst: dst}
            depth = {dst: 0}
            frontier = [dst]
            while frontier:
                next_frontier: list[int] = []
                for node in frontier:
                    for neighbor in self._neighbor_order(node):
                        if neighbor not in parents:
                            parents[neighbor] = node
                            depth[neighbor] = depth[node] + 1
                            next_frontier.append(neighbor)
                frontier = next_frontier
            for node, parent in parents.items():
                if node != dst:
                    self._next_hop[(node, dst)] = parent
                    self._hops[(node, dst)] = depth[node]

    def has_route(self, src: int, dst: int) -> bool:
        """Whether a path from ``src`` to ``dst`` exists."""
        return src == dst or (src, dst) in self._next_hop

    def next_hop(self, src: int, dst: int) -> int:
        """The neighbor of ``src`` on the shortest path to ``dst``.

        Raises
        ------
        RoutingError
            If the graph has no path, or ``src == dst`` (nothing to route).
        """
        if src == dst:
            raise RoutingError(f"node {src} routing to itself")
        try:
            return self._next_hop[(src, dst)]
        except KeyError:
            raise RoutingError(f"no route from {src} to {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        """Path length in hops (0 for ``src == dst``)."""
        if src == dst:
            return 0
        try:
            return self._hops[(src, dst)]
        except KeyError:
            raise RoutingError(f"no route from {src} to {dst}") from None

    def path(self, src: int, dst: int) -> list[int]:
        """The full node sequence ``src ... dst`` of the chosen route."""
        if src == dst:
            return [src]
        path = [src]
        node = src
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > len(self._hops) + 2:  # pragma: no cover - safety
                raise RoutingError(f"routing loop from {src} to {dst}")
        return path


def build_routing(
    layout: Layout, range_m: float, rng: typing.Any = None
) -> RoutingTable:
    """Routing table for radios of ``range_m`` deployed as ``layout``."""
    return RoutingTable(layout.graph(range_m), rng=rng)


def tree_depths(table: RoutingTable, sink: int) -> dict[int, int]:
    """Hop distance of every connected node to ``sink`` (collection tree)."""
    depths = {}
    for node in table.graph.nodes:
        if node == sink:
            depths[node] = 0
        elif table.has_route(node, sink):
            depths[node] = table.hops(node, sink)
    return depths
