"""Static shortest-path routing over a radio's connectivity graph.

Section 4.1: "To decouple the routing effects on performance, two separate
trees that go over sensor and IEEE 802.11 radios are built."  We generalize
the collection tree to a next-hop table because BCP's wake-up handshake
also routes *away* from the sink: the WAKEUP travels sender → receiver and
the WAKEUP-ACK travels back.

Three engines implement the same query API:

* :class:`RoutingTable` — the historical eager engine: one BFS per
  destination, all destinations materialized at construction.  O(n · (V+E))
  build, O(n²) storage; byte-compatible with every pinned golden digest.
  Since PR 5 the build runs over the same :class:`~repro.net.csr.CsrGraph`
  int arrays the lazy engine uses (indexes map ids monotonically, so BFS
  visit order and every threaded-rng draw are unchanged) — networkx is
  accepted for interop but flattened once at construction.
* :class:`LazyRoutingTable` — the scale engine: a shared
  :class:`~repro.net.csr.CsrGraph` adjacency (int arrays, no networkx on
  the hot path) plus per-destination BFS trees computed on first use and
  memoized.  A collection-tree workload (sink + WAKEUP reverse paths)
  computes O(senders + 1) trees instead of n, which is what makes 1k+
  node deployments routable in milliseconds (see ``repro bench``).
* :class:`DijkstraRoutingTable` — the cost engine behind the routing
  *policies* (:mod:`repro.net.policy`): a binary-heap Dijkstra over the
  same CSR arrays, consuming a :class:`~repro.net.policy.LinkCostModel`
  instead of unit hops.  Per-destination trees are memoized like the lazy
  engine's, ties break with the same derived per-destination streams, and
  under unit costs its trees are draw-for-draw identical to the BFS
  engines' (a property the test suite pins).

Tie-breaking between equal-length paths is deterministic by default
(lowest neighbor id).  On a perfectly regular grid that concentrates every
flow onto one row — a worst-case "backbone" that no real deployment's
collection tree exhibits — so the evaluation passes a seeded ``rng`` to
spread equal-cost routes across branches while keeping runs reproducible.
Two seeded schemes exist:

* ``threaded`` (the eager default) — one rng stream is consumed across
  destinations in ascending-id order, exactly the historical behaviour
  the pinned golden digests encode.  Inherently order-dependent, so it
  cannot be computed lazily.
* ``per-destination`` (the lazy engine's scheme, also available on the
  eager engine via ``tie_break="per-destination"``) — a single 64-bit
  seed is drawn from the caller's rng at construction and each
  destination's tree shuffles with its own stream derived as
  ``sha256("route-tie:<seed>:<dst>")``.  Trees are identical no matter
  which destinations are computed, or in what order — the property that
  makes laziness sound.

Routes minimize hop count; all query methods raise :class:`RoutingError`
for pairs with no connecting path (see :meth:`RoutingTable.next_hop`).
"""

from __future__ import annotations

import hashlib
import heapq
import random
import typing

from repro.net.csr import CsrGraph
from repro.topology.layout import Layout

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.policy import LinkCostModel

#: Tie-break scheme names accepted by the eager engine.
TIE_THREADED = "threaded"
TIE_PER_DESTINATION = "per-destination"

#: Parent-array sentinel for a dead (retired) node: distinguishable from
#: ``-1`` (not settled / unreachable) so the BFS skips dead nodes without
#: any extra membership test on the hot path, while every query still
#: reads it as "no route" (< 0).  Only fault injection writes it.
_DEAD = -2


class RoutingError(Exception):
    """Raised when no route exists for a requested (src, dst) pair."""


def destination_rng(tie_seed: int, dst: int) -> random.Random:
    """The derived tie-break stream for one destination's BFS tree.

    Well-mixed (sha256) so adjacent destination ids don't get correlated
    Mersenne states, and a pure function of ``(tie_seed, dst)`` so a tree
    computed lazily is identical to one computed in a full eager build.
    """
    digest = hashlib.sha256(f"route-tie:{tie_seed}:{dst}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class _QueryMixin:
    """The query API shared by both engines (next_hop/hops/path/...)."""

    #: Topology epoch the current trees were computed against (0 =
    #: pristine build; only :meth:`invalidate_epoch` moves it).
    epoch: int = 0
    #: Currently-dead node ids / CSR indexes (empty on the no-fault path).
    _dead: frozenset[int] = frozenset()
    _dead_idx: frozenset[int] = frozenset()

    def invalidate_epoch(
        self, epoch: int, dead: typing.Iterable[int] = ()
    ) -> None:
        """Drop every memoized tree and recompute against ``dead`` nodes.

        ``dead`` is the full set of currently-retired node ids (not a
        delta); an unknown id is ignored, matching how queries treat
        unknown ids.  Dead nodes neither originate, relay, nor terminate
        routes — their rows read as unreachable.  Only fault injection
        calls this, so the no-fault hot paths never see a non-empty set.
        """
        raise NotImplementedError

    def _resolve_dead(
        self, epoch: int, dead: typing.Iterable[int]
    ) -> frozenset[int]:
        """Shared invalidation bookkeeping; returns the dead CSR indexes."""
        self.epoch = epoch
        self._dead = frozenset(dead)
        csr = self.adjacency
        self._dead_idx = frozenset(
            csr.index(node) for node in self._dead if node in csr
        )
        return self._dead_idx

    def has_route(self, src: int, dst: int) -> bool:
        """Whether a path from ``src`` to ``dst`` exists."""
        raise NotImplementedError

    def next_hop(self, src: int, dst: int) -> int:
        """The neighbor of ``src`` on the shortest path to ``dst``.

        Raises
        ------
        RoutingError
            If the graph has no ``src`` → ``dst`` path (the pair is in
            different components, or either node is isolated), or
            ``src == dst`` (nothing to route).  Disconnected pairs are an
            *expected* outcome for composed deployments — callers that can
            degrade should probe :meth:`has_route` first.
        """
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        """Path length in hops (0 for ``src == dst``).

        Raises
        ------
        RoutingError
            If the graph has no ``src`` → ``dst`` path.
        """
        raise NotImplementedError

    def path(self, src: int, dst: int) -> list[int]:
        """The full node sequence ``src ... dst`` of the chosen route.

        Raises
        ------
        RoutingError
            If the graph has no ``src`` → ``dst`` path.
        """
        if src == dst:
            return [src]
        path = [src]
        node = src
        limit = len(self.node_ids) + 1
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > limit:  # pragma: no cover - safety
                raise RoutingError(f"routing loop from {src} to {dst}")
        return path

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All routable node ids."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.node_ids)


class RoutingTable(_QueryMixin):
    """All-pairs next-hop routing over one connectivity graph (eager).

    Parameters
    ----------
    graph:
        Undirected connectivity graph: a
        :class:`~repro.net.csr.CsrGraph`, or any networkx-like graph
        (e.g. from :meth:`Layout.graph`), which is flattened to CSR
        arrays once at construction.  Either way the build itself runs on
        the int-array adjacency — the same arrays the lazy engine walks —
        not on networkx dict-of-dicts.
    rng:
        Optional ``random.Random``-like stream; when given, ties between
        equal-cost parents break uniformly at random (deterministically
        for a seeded stream) instead of by lowest node id.
    tie_break:
        ``"threaded"`` (default, the historical golden-pinned scheme) or
        ``"per-destination"`` (the lazy engine's order-independent scheme;
        see the module docstring).  Ignored without ``rng``.

    Notes
    -----
    Routes minimize hop count.  ``next_hop(u, v)`` is the neighbor of ``u``
    on the chosen shortest path to ``v``.

    The CSR port is byte-compatible with the historical dict build: CSR
    indexes map ids monotonically (both ascend), so BFS visit order,
    per-visit neighbor order, and therefore every threaded-rng shuffle
    draw are exactly the sequence the pinned golden digests encode.
    """

    def __init__(
        self,
        graph: "typing.Any",
        rng: typing.Any = None,
        tie_break: str = TIE_THREADED,
    ):
        if tie_break not in (TIE_THREADED, TIE_PER_DESTINATION):
            raise ValueError(
                f"unknown tie_break {tie_break!r}; expected "
                f"{TIE_THREADED!r} or {TIE_PER_DESTINATION!r}"
            )
        self.graph = graph
        if isinstance(graph, CsrGraph):
            self.adjacency = graph
        else:
            self.adjacency = CsrGraph.from_networkx(graph)
        self._rng = rng
        self._tie_break = tie_break
        self._tie_seed: int | None = None
        if rng is not None and tie_break == TIE_PER_DESTINATION:
            self._tie_seed = rng.getrandbits(64)
        #: Per-destination-index parent/depth arrays (index space; -1 =
        #: unreachable) — the same tree layout the lazy engine memoizes,
        #: materialized for every destination up front.
        self._parents: list[list[int]] = []
        self._depths: list[list[int]] = []
        self._build()

    def _build(self) -> None:
        # BFS from every destination over the CSR arrays; parent choice
        # order decides how ties break (ascending = deterministic,
        # shuffled = load-spreading).  Destinations run in ascending id
        # order — with a threaded rng that order *is* the draw sequence
        # the golden digests pin.
        csr = self.adjacency
        indptr, indices = csr.indptr, csr.indices
        n = len(csr.ids)
        dead_idx = self._dead_idx
        threaded_rng = self._rng if self._tie_seed is None else None
        for dst_idx in range(n):
            if dead_idx and dst_idx in dead_idx:
                # A dead destination terminates nothing: every source
                # reads unreachable without running the BFS.
                self._parents.append([-1] * n)
                self._depths.append([-1] * n)
                continue
            if self._tie_seed is not None:
                rng = destination_rng(self._tie_seed, csr.ids[dst_idx])
            else:
                rng = threaded_rng
            parent = [-1] * n
            depth = [-1] * n
            if dead_idx:
                # Pre-marking dead nodes as the _DEAD sentinel excludes
                # them from relaying (the == -1 settle test skips them)
                # with zero membership tests inside the hot loops; the
                # sentinel stays negative so queries read "no route".
                for i in dead_idx:
                    parent[i] = _DEAD
            parent[dst_idx] = dst_idx
            depth[dst_idx] = 0
            frontier = [dst_idx]
            while frontier:
                next_frontier: list[int] = []
                for node in frontier:
                    node_depth = depth[node] + 1
                    if rng is None:
                        for j in range(indptr[node], indptr[node + 1]):
                            neighbor = indices[j]
                            if parent[neighbor] == -1:
                                parent[neighbor] = node
                                depth[neighbor] = node_depth
                                next_frontier.append(neighbor)
                    else:
                        # A fresh slice per visit keeps the rng draw
                        # sequence identical to the historical
                        # sort-then-shuffle (shuffle consumption depends
                        # only on list length).
                        order = indices[indptr[node] : indptr[node + 1]]
                        rng.shuffle(order)
                        for neighbor in order:
                            if parent[neighbor] == -1:
                                parent[neighbor] = node
                                depth[neighbor] = node_depth
                                next_frontier.append(neighbor)
                frontier = next_frontier
            self._parents.append(parent)
            self._depths.append(depth)

    def invalidate_epoch(
        self, epoch: int, dead: typing.Iterable[int] = ()
    ) -> None:
        """Rebuild every destination tree minus the ``dead`` nodes.

        Eager engine: the whole table is recomputed (O(n · (V+E)) again).
        With a threaded rng the rebuild consumes fresh draws from the
        shared stream — acceptable because epochs only move on the fault
        path, where no golden digest applies.
        """
        self._resolve_dead(epoch, dead)
        self._parents = []
        self._depths = []
        self._build()

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All routable node ids, ascending."""
        return self.adjacency.ids

    def has_edge(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are directly linked."""
        return self.adjacency.has_edge(a, b)

    def _pair_indexes(self, src: int, dst: int) -> tuple[int, int] | None:
        """Both ids' CSR indexes, or None when either id is unknown."""
        csr = self.adjacency
        try:
            return csr.index(src), csr.index(dst)
        except KeyError:
            return None

    def has_route(self, src: int, dst: int) -> bool:
        """Whether a path from ``src`` to ``dst`` exists."""
        if src == dst:
            return True
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            return False
        src_idx, dst_idx = indexes
        return self._parents[dst_idx][src_idx] >= 0

    def next_hop(self, src: int, dst: int) -> int:
        if src == dst:
            raise RoutingError(f"node {src} routing to itself")
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        hop = self._parents[dst_idx][src_idx]
        if hop < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return self.adjacency.ids[hop]

    next_hop.__doc__ = _QueryMixin.next_hop.__doc__

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        count = self._depths[dst_idx][src_idx]
        if count < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return count

    hops.__doc__ = _QueryMixin.hops.__doc__

    def depths_to(self, sink: int) -> dict[int, int]:
        """Hop distance of every node that can reach ``sink`` (incl. itself)."""
        csr = self.adjacency
        if sink not in csr:
            return {}
        depth = self._depths[csr.index(sink)]
        return {
            node: depth[i] for i, node in enumerate(csr.ids) if depth[i] >= 0
        }


class _LazyTree:
    """Resume-able BFS state for one destination's routing tree.

    ``parent``/``depth`` entries are final the moment they are assigned
    (BFS settles each node exactly once), so the tree can stop expanding
    between levels and resume later: the pending ``frontier`` plus the
    destination's private ``rng`` capture the whole BFS state, and the
    shuffle-draw sequence of a resumed expansion is identical to an
    uninterrupted full build.  ``frontier`` is emptied when the reachable
    component is exhausted — after that a ``-1`` parent means unreachable
    rather than not-yet-expanded.
    """

    __slots__ = ("parent", "depth", "rng", "frontier")

    def __init__(
        self, n: int, dst_idx: int, rng: typing.Any
    ):
        self.parent = [-1] * n
        self.depth = [-1] * n
        self.parent[dst_idx] = dst_idx
        self.depth[dst_idx] = 0
        self.rng = rng
        self.frontier: list[int] = [dst_idx]


class LazyRoutingTable(_QueryMixin):
    """Per-destination BFS trees over a CSR adjacency, computed on demand.

    Parameters
    ----------
    adjacency:
        The shared :class:`~repro.net.csr.CsrGraph` (build it once from a
        :class:`Layout`, a medium's neighbor index, or a networkx graph).
    rng:
        Optional seeded stream.  Exactly **one** 64-bit draw is consumed at
        construction; every destination then shuffles with its own derived
        stream (:func:`destination_rng`), so memoized trees are identical
        regardless of query order.

    Notes
    -----
    Trees are not only lazy per destination but *incremental within* a
    destination: a query expands the destination's BFS level by level and
    stops as soon as the queried source is settled, memoizing the pending
    frontier (:class:`_LazyTree`).  A reverse-route query toward an
    adjacent node costs O(degree) instead of O(V + E) — the difference
    between milliseconds and seconds for the many short control-plane
    reverse routes a 10k-node collection round issues — while the settled
    prefix of every tree is bit-identical to a full eager build (parents
    never change once assigned, and the per-destination rng stream
    resumes exactly where the last expansion left it).
    ``trees_computed`` counts destinations whose tree was started (an ops
    counter ``repro bench`` records).
    """

    def __init__(self, adjacency: CsrGraph, rng: typing.Any = None):
        self.adjacency = adjacency
        self._tie_seed: int | None = (
            None if rng is None else rng.getrandbits(64)
        )
        #: dst index → resume-able BFS state; -1 parents are unreachable
        #: only once the tree's frontier is exhausted.
        self._trees: dict[int, _LazyTree] = {}
        self.trees_computed = 0

    @classmethod
    def from_layout(
        cls, layout: Layout, range_m: float, rng: typing.Any = None
    ) -> "LazyRoutingTable":
        """Lazy routing for radios of ``range_m`` deployed as ``layout``."""
        return cls(CsrGraph.from_layout(layout, range_m), rng=rng)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All routable node ids, ascending."""
        return self.adjacency.ids

    def has_edge(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are directly linked."""
        return self.adjacency.has_edge(a, b)

    def invalidate_epoch(
        self, epoch: int, dead: typing.Iterable[int] = ()
    ) -> None:
        """Drop every memoized tree; queries recompute them on demand.

        Lazy engine: O(1) now, each tree re-derives its per-destination
        rng stream on first use (identical seed, so a surviving
        destination's tree is rebuilt bit-identically minus the dead
        nodes).
        """
        self._resolve_dead(epoch, dead)
        self._trees.clear()

    def _tree(self, dst_idx: int) -> _LazyTree:
        """The (possibly partially expanded) tree state for ``dst_idx``."""
        tree = self._trees.get(dst_idx)
        if tree is not None:
            return tree
        csr = self.adjacency
        rng = (
            None
            if self._tie_seed is None
            else destination_rng(self._tie_seed, csr.ids[dst_idx])
        )
        tree = _LazyTree(len(csr.ids), dst_idx, rng)
        dead_idx = self._dead_idx
        if dead_idx:
            if dst_idx in dead_idx:
                # Dead destination: no expansion, everything unreachable.
                tree.frontier = []
                tree.parent[dst_idx] = _DEAD
                tree.depth[dst_idx] = -1
            else:
                # Same sentinel trick as the eager build: dead nodes are
                # never settled as relays, yet still occupy their slot in
                # every shuffled slice so draw counts stay independent of
                # liveness.
                parent = tree.parent
                for i in dead_idx:
                    parent[i] = _DEAD
        self._trees[dst_idx] = tree
        self.trees_computed += 1
        return tree

    def _expand_level(self, tree: _LazyTree) -> None:
        """Advance ``tree`` by one BFS level (exact historical draw order)."""
        csr = self.adjacency
        indptr, indices = csr.indptr, csr.indices
        parent, depth, rng = tree.parent, tree.depth, tree.rng
        next_frontier: list[int] = []
        for node in tree.frontier:
            node_depth = depth[node] + 1
            if rng is None:
                for j in range(indptr[node], indptr[node + 1]):
                    neighbor = indices[j]
                    if parent[neighbor] == -1:
                        parent[neighbor] = node
                        depth[neighbor] = node_depth
                        next_frontier.append(neighbor)
            else:
                # A fresh slice per visit keeps the rng draw sequence
                # identical to the historical sort-then-shuffle (shuffle
                # consumption depends only on list length).
                order = indices[indptr[node] : indptr[node + 1]]
                rng.shuffle(order)
                for neighbor in order:
                    if parent[neighbor] == -1:
                        parent[neighbor] = node
                        depth[neighbor] = node_depth
                        next_frontier.append(neighbor)
        tree.frontier = next_frontier

    def _settled_tree(self, dst_idx: int, src_idx: int) -> _LazyTree:
        """The tree for ``dst_idx``, expanded until ``src_idx`` settles.

        Stops at the first BFS level that reaches ``src_idx`` (or when
        the component is exhausted, which marks ``src_idx`` unreachable).
        """
        tree = self._tree(dst_idx)
        parent = tree.parent
        # == -1 (not < 0): a dead source carries the _DEAD sentinel and
        # will never settle — expanding its component would be wasted.
        while parent[src_idx] == -1 and tree.frontier:
            self._expand_level(tree)
        return tree

    def _full_tree(self, dst_idx: int) -> _LazyTree:
        """The tree for ``dst_idx``, expanded to its whole component."""
        tree = self._tree(dst_idx)
        while tree.frontier:
            self._expand_level(tree)
        return tree

    def _pair_indexes(self, src: int, dst: int) -> tuple[int, int] | None:
        """Both ids' CSR indexes, or None when either id is unknown.

        Unknown ids must surface through the same documented paths as
        disconnected pairs (RoutingError / has_route False), matching the
        eager engine's dict-miss behavior — never a bare KeyError.
        """
        csr = self.adjacency
        try:
            return csr.index(src), csr.index(dst)
        except KeyError:
            return None

    def has_route(self, src: int, dst: int) -> bool:
        """Whether a path from ``src`` to ``dst`` exists.

        Computes (and memoizes) the destination's tree on first use.
        ``src == dst`` is trivially True (matching the eager engine).
        """
        if src == dst:
            return True
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            return False
        src_idx, dst_idx = indexes
        return self._settled_tree(dst_idx, src_idx).parent[src_idx] >= 0

    def next_hop(self, src: int, dst: int) -> int:
        if src == dst:
            raise RoutingError(f"node {src} routing to itself")
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        hop = self._settled_tree(dst_idx, src_idx).parent[src_idx]
        if hop < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return self.adjacency.ids[hop]

    next_hop.__doc__ = _QueryMixin.next_hop.__doc__

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        count = self._settled_tree(dst_idx, src_idx).depth[src_idx]
        if count < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return count

    hops.__doc__ = _QueryMixin.hops.__doc__

    def depths_to(self, sink: int) -> dict[int, int]:
        """Hop distance of every node that can reach ``sink`` (one BFS).

        An unknown ``sink`` yields an empty dict, like the eager engine.
        """
        csr = self.adjacency
        if sink not in csr:
            return {}
        depth = self._full_tree(csr.index(sink)).depth
        return {
            node: depth[i] for i, node in enumerate(csr.ids) if depth[i] >= 0
        }


class _CostTree:
    """One destination's settled Dijkstra tree (cost-space sibling of
    :class:`_LazyTree`; computed whole, as cost frontiers have no clean
    level structure to pause between)."""

    __slots__ = ("parent", "depth", "cost")

    def __init__(self, n: int):
        self.parent = [-1] * n
        self.depth = [-1] * n
        self.cost = [float("inf")] * n


class DijkstraRoutingTable(_QueryMixin):
    """Min-cost routing over a CSR adjacency under a pluggable cost model.

    Parameters
    ----------
    adjacency:
        The shared :class:`~repro.net.csr.CsrGraph`.
    cost_model:
        A :class:`~repro.net.policy.LinkCostModel`: static per-slot edge
        costs plus optional per-node transmitter multipliers.
    layout:
        Deployment geometry handed to the cost model for distances (may
        be ``None`` for models that don't need it).
    rng:
        Optional seeded stream; like the lazy engine, exactly one 64-bit
        draw is consumed at construction and each destination shuffles
        with its own derived stream (:func:`destination_rng`).

    Notes
    -----
    The heap orders entries by ``(cost, insertion counter)``: FIFO among
    equal costs.  With unit edge costs and uniform factors that makes the
    settle order exactly BFS frontier order, and since relaxation only
    ever *strictly* improves, parents land on the first discoverer — so
    the produced trees (and the rng draw sequence: one neighbor-slice
    shuffle per settled node, in settle order) are identical to the BFS
    engines'.  Energy-based costs then diverge consciously.

    ``node_factors`` are re-read on :meth:`invalidate_epoch` (so residual
    costs see post-death meters) and on :meth:`refresh_costs` (so the
    fault injector's battery poll can fold live depletion into routes
    between epochs).  Edge costs are geometric and never change.
    """

    def __init__(
        self,
        adjacency: CsrGraph,
        cost_model: "LinkCostModel",
        layout: Layout | None = None,
        rng: typing.Any = None,
    ):
        self.adjacency = adjacency
        self.cost_model = cost_model
        self._tie_seed: int | None = (
            None if rng is None else rng.getrandbits(64)
        )
        self._edge_costs = list(cost_model.edge_costs(adjacency, layout))
        if len(self._edge_costs) != len(adjacency.indices):
            raise ValueError(
                f"cost model produced {len(self._edge_costs)} edge costs "
                f"for {len(adjacency.indices)} CSR slots"
            )
        self._factors = cost_model.node_factors(adjacency)
        self._trees: dict[int, _CostTree] = {}
        self.trees_computed = 0

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All routable node ids, ascending."""
        return self.adjacency.ids

    def has_edge(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are directly linked."""
        return self.adjacency.has_edge(a, b)

    def invalidate_epoch(
        self, epoch: int, dead: typing.Iterable[int] = ()
    ) -> None:
        """Drop every memoized tree and re-read the node cost factors.

        Like the lazy engine this is O(1) plus one factor sweep; each
        surviving destination's tree is recomputed on first use against
        the new liveness set and factors.
        """
        self._resolve_dead(epoch, dead)
        self._trees.clear()
        self._factors = self.cost_model.node_factors(self.adjacency)

    def refresh_costs(self) -> None:
        """Fold live node-factor changes into future routes, same epoch.

        No-op for static cost models.  For dynamic ones (residual
        energy) the fault injector calls this from its battery poll so
        load shifts off depleting relays *before* they die — waiting for
        the death-driven epoch bump would defeat the policy's purpose.
        """
        if not self.cost_model.dynamic:
            return
        self._factors = self.cost_model.node_factors(self.adjacency)
        self._trees.clear()

    def _tree(self, dst_idx: int) -> _CostTree:
        """The memoized settled tree for ``dst_idx``."""
        tree = self._trees.get(dst_idx)
        if tree is None:
            tree = self._compute_tree(dst_idx)
            self._trees[dst_idx] = tree
            self.trees_computed += 1
        return tree

    def _compute_tree(self, dst_idx: int) -> _CostTree:
        csr = self.adjacency
        indptr, indices = csr.indptr, csr.indices
        n = len(csr.ids)
        edge_costs = self._edge_costs
        factors = self._factors
        tree = _CostTree(n)
        parent, depth, cost = tree.parent, tree.depth, tree.cost
        dead_idx = self._dead_idx
        if dead_idx:
            if dst_idx in dead_idx:
                # Dead destination: nothing to settle, everything
                # unreachable (mirrors the lazy engine).
                parent[dst_idx] = _DEAD
                return tree
            # Same sentinel trick as the BFS engines: dead nodes never
            # settle as relays yet still occupy their slice slots, so
            # shuffle draw counts stay independent of liveness.
            for i in dead_idx:
                parent[i] = _DEAD
        rng = (
            None
            if self._tie_seed is None
            else destination_rng(self._tie_seed, csr.ids[dst_idx])
        )
        parent[dst_idx] = dst_idx
        depth[dst_idx] = 0
        cost[dst_idx] = 0.0
        settled = bytearray(n)
        # (cost, insertion counter, node): FIFO among equal costs — the
        # property that makes unit-cost trees BFS-identical.
        heap: list[tuple[float, int, int]] = [(0.0, 0, dst_idx)]
        counter = 1
        while heap:
            _, _, node = heapq.heappop(heap)
            if settled[node]:
                continue  # stale entry superseded by a cheaper relaxation
            settled[node] = 1
            base = cost[node]
            node_depth = depth[node] + 1
            lo, hi = indptr[node], indptr[node + 1]
            if rng is None:
                order: typing.Iterable[int] = range(lo, hi)
            else:
                # Shuffling slot positions consumes the same draws as the
                # BFS engines' neighbor-slice shuffle (shuffle consumption
                # depends only on length) and visits neighbors in the same
                # permuted order, while keeping the slot at hand for the
                # edge-cost lookup.
                slots = list(range(lo, hi))
                rng.shuffle(slots)
                order = slots
            for j in order:
                neighbor = indices[j]
                if parent[neighbor] == _DEAD or settled[neighbor]:
                    continue
                step = edge_costs[j]
                if factors is not None:
                    # The node *entering* the tree transmits across this
                    # edge (trees grow destination-outward), so its factor
                    # scales the step.
                    step *= factors[neighbor]
                candidate = base + step
                if candidate < cost[neighbor]:
                    cost[neighbor] = candidate
                    parent[neighbor] = node
                    depth[neighbor] = node_depth
                    heapq.heappush(heap, (candidate, counter, neighbor))
                    counter += 1
        return tree

    def _pair_indexes(self, src: int, dst: int) -> tuple[int, int] | None:
        """Both ids' CSR indexes, or None when either id is unknown."""
        csr = self.adjacency
        try:
            return csr.index(src), csr.index(dst)
        except KeyError:
            return None

    def has_route(self, src: int, dst: int) -> bool:
        """Whether a path from ``src`` to ``dst`` exists."""
        if src == dst:
            return True
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            return False
        src_idx, dst_idx = indexes
        return self._tree(dst_idx).parent[src_idx] >= 0

    def next_hop(self, src: int, dst: int) -> int:
        if src == dst:
            raise RoutingError(f"node {src} routing to itself")
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        hop = self._tree(dst_idx).parent[src_idx]
        if hop < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return self.adjacency.ids[hop]

    next_hop.__doc__ = _QueryMixin.next_hop.__doc__

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        count = self._tree(dst_idx).depth[src_idx]
        if count < 0:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return count

    hops.__doc__ = _QueryMixin.hops.__doc__

    def path_cost(self, src: int, dst: int) -> float:
        """Total link cost of the chosen route (0.0 for ``src == dst``).

        Raises
        ------
        RoutingError
            If the graph has no ``src`` → ``dst`` path.
        """
        if src == dst:
            return 0.0
        indexes = self._pair_indexes(src, dst)
        if indexes is None:
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        src_idx, dst_idx = indexes
        total = self._tree(dst_idx).cost[src_idx]
        if total == float("inf"):
            raise RoutingError(
                f"no route from {src} to {dst} (topology epoch {self.epoch})"
            )
        return total

    def depths_to(self, sink: int) -> dict[int, int]:
        """Hop length of every connected node's chosen route to ``sink``.

        Note: hop count *along the min-cost route*, not the min hop
        count — energy policies happily take more, shorter hops.
        """
        csr = self.adjacency
        if sink not in csr:
            return {}
        depth = self._tree(csr.index(sink)).depth
        return {
            node: depth[i] for i, node in enumerate(csr.ids) if depth[i] >= 0
        }


#: Any routing engine; the query API is identical.
RoutingLike = typing.Union[
    RoutingTable, LazyRoutingTable, DijkstraRoutingTable
]

#: Engine names accepted by :func:`build_routing`.
ENGINE_EAGER = "eager"
ENGINE_LAZY = "lazy"


def build_routing(
    layout: Layout,
    range_m: float,
    rng: typing.Any = None,
    engine: str = ENGINE_EAGER,
) -> RoutingLike:
    """Routing table for radios of ``range_m`` deployed as ``layout``.

    ``engine="eager"`` (default) keeps the historical all-pairs build;
    ``engine="lazy"`` returns a :class:`LazyRoutingTable` with
    per-destination tie-breaking.  Both engines now share the same
    adjacency source — :meth:`CsrGraph.from_layout`'s spatial hash, which
    is edge-identical to ``layout.graph(range_m)`` without the O(n²)
    pairwise scan — so the eager build too skips networkx entirely.
    """
    if engine == ENGINE_LAZY:
        return LazyRoutingTable.from_layout(layout, range_m, rng=rng)
    if engine != ENGINE_EAGER:
        raise ValueError(
            f"unknown routing engine {engine!r}; expected "
            f"{ENGINE_EAGER!r} or {ENGINE_LAZY!r}"
        )
    return RoutingTable(CsrGraph.from_layout(layout, range_m), rng=rng)


def tree_depths(table: RoutingLike, sink: int) -> dict[int, int]:
    """Hop distance of every connected node to ``sink`` (collection tree).

    On the lazy engine this is a single memoized BFS rather than n queries.
    """
    return table.depths_to(sink)
