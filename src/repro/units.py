"""Unit conversions and physical constants used throughout :mod:`repro`.

The library uses strict SI units internally:

* time in **seconds**
* energy in **joules**
* power in **watts**
* data sizes in **bits** (helper functions accept bytes where noted)
* rates in **bits per second**
* distances in **meters**

The paper (and its Table 1) quotes milliwatts, millijoules and
kilobits/kilobytes; these helpers convert at the boundary so that no module
ever mixes unit systems.
"""

from __future__ import annotations

#: Number of bits per byte (spelled out so size conversions read clearly).
BITS_PER_BYTE = 8

#: Bytes per kilobyte.  The paper uses binary kilobytes (1 KB = 1024 B).
BYTES_PER_KB = 1024


def mw_to_w(milliwatts: float) -> float:
    """Convert a power in milliwatts to watts."""
    return milliwatts * 1e-3


def w_to_mw(watts: float) -> float:
    """Convert a power in watts to milliwatts."""
    return watts * 1e3


def mj_to_j(millijoules: float) -> float:
    """Convert an energy in millijoules to joules."""
    return millijoules * 1e-3


def j_to_mj(joules: float) -> float:
    """Convert an energy in joules to millijoules."""
    return joules * 1e3


def j_to_uj(joules: float) -> float:
    """Convert an energy in joules to microjoules."""
    return joules * 1e6


def uj_to_j(microjoules: float) -> float:
    """Convert an energy in microjoules to joules."""
    return microjoules * 1e-6


def kbps_to_bps(kilobits_per_second: float) -> float:
    """Convert a rate in kilobits/s (decimal, as radio datasheets quote) to bits/s."""
    return kilobits_per_second * 1e3


def mbps_to_bps(megabits_per_second: float) -> float:
    """Convert a rate in megabits/s to bits/s."""
    return megabits_per_second * 1e6


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a size in bytes to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a size in bits to bytes."""
    return num_bits / BITS_PER_BYTE


def kb_to_bits(kilobytes: float) -> float:
    """Convert binary kilobytes (1 KB = 1024 B) to bits."""
    return kilobytes * BYTES_PER_KB * BITS_PER_BYTE


def bits_to_kb(num_bits: float) -> float:
    """Convert bits to binary kilobytes (1 KB = 1024 B)."""
    return num_bits / (BYTES_PER_KB * BITS_PER_BYTE)


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds * 1e-3


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def transmission_time(size_bits: float, rate_bps: float) -> float:
    """Return the airtime in seconds of ``size_bits`` at ``rate_bps``.

    Raises
    ------
    ValueError
        If the rate is not strictly positive or the size is negative.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    if size_bits < 0:
        raise ValueError(f"size must be non-negative, got {size_bits!r}")
    return size_bits / rate_bps
