"""The declared benchmark suite ``repro bench`` runs.

Each :class:`BenchCase` is a named, deterministic workload with an untimed
``setup`` and a timed ``run`` returning ops counters.  Cases are tagged
into suites: ``smoke`` is the CI gate (everything the acceptance criteria
pin — routing build at 1k/5k nodes, the sim kernel, medium delivery, one
end-to-end fig-scale cell, a 1k-node composed scenario build); ``full``
is a superset adding the heavy contention cell and the 10k-node scale
cases (lazy routing, batched medium delivery and the full
composed-scenario build at 10k nodes — nightly/full material, too slow
for every-PR smoke).

Wall times are machine-dependent, so the committed ``BENCH_*.json``
baselines gate *relative* regressions (see :mod:`repro.perf.bench`);
:data:`RATIO_GATES` additionally pins machine-independent speedup ratios
(lazy vs eager routing must stay ≥ 10× at 1k nodes),
:data:`THROUGHPUT_GATES` pins wall-normalized event-rate floors (the
calendar-scheduler kernel sustains ≥ 1M events/s), and
:data:`WALL_BUDGETS` pins the absolute acceptance budgets that must hold
on any CI-class host (a 10k-node composed scenario builds in < 5 s; a
full 10k-node collection round finishes in < 20 s).
"""

from __future__ import annotations

import dataclasses
import random
import typing

#: Suite names, smallest first; every suite includes the ones before it.
SUITES = ("smoke", "full")

#: 1k-node routing benchmark geometry: ~6.6 mean degree at range 60 m.
_FIELD_1K = 1265.0
_FIELD_5K = 2830.0
_FIELD_10K = 4000.0
_RANGE_M = 60.0
#: Composed-scenario field widths: ~10 mean sensor-tier degree (range
#: 40 m), scaled as sqrt(n) to keep density constant.
_COMPOSE_FIELD_1K = 700.0
_COMPOSE_FIELD_10K = 2200.0
#: Senders in the collection-tree workload (sink + forward + reverse
#: trees — the O(senders + 1) pattern BCP's wakeup handshake queries).
_N_SENDERS = 32


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One named benchmark: untimed setup, timed run, ops counters."""

    name: str
    summary: str
    setup: typing.Callable[[], typing.Any]
    run: typing.Callable[[typing.Any], dict[str, float]]
    suites: tuple[str, ...] = SUITES
    repeats: int = 3


@dataclasses.dataclass(frozen=True)
class RatioGate:
    """A machine-independent check: ``slow_case / fast_case >= min_ratio``."""

    name: str
    slow_case: str
    fast_case: str
    min_ratio: float


@dataclasses.dataclass(frozen=True)
class ThroughputGate:
    """A machine-independent-ish floor: ``ops[ops_key] / wall_s >= min_per_s``.

    Wall-normalized rather than wall-absolute, so it survives suite
    growth (adding cases doesn't shift it), but still host-dependent —
    floors are set well below healthy-machine rates (a CI-class host
    clears a 1M events/s floor by ~60% margin) so they catch the
    order-of-magnitude regressions (an accidentally quadratic agenda, a
    dropped fast path) without flaking on a loaded runner.
    """

    name: str
    case: str
    ops_key: str
    min_per_s: float


@dataclasses.dataclass(frozen=True)
class WallBudget:
    """An absolute acceptance budget: ``case`` must finish in ``max_wall_s``.

    Unlike the baseline comparison (relative, same-host-class only),
    budgets encode acceptance criteria that must hold anywhere the suite
    runs — so they are generous enough for a loaded CI runner while
    still catching order-of-magnitude construction regressions.
    """

    name: str
    case: str
    max_wall_s: float


def _uniform_layout(n: int, field_m: float, seed: int):
    from repro.topology.layout import random_layout

    return random_layout(n, field_m, field_m, random.Random(seed))


def _collection_workload(table, n_nodes: int) -> int:
    """The query mix of a collection-tree run: sink + reverse paths.

    Forward routes sender → sink (data), plus the reverse next hop the
    WAKEUP-ACK travels (sink-side trees toward each sender).  Returns the
    number of reachable senders (a determinism cross-check).
    """
    sink = 0
    senders = random.Random(4).sample(range(1, n_nodes), _N_SENDERS)
    reached = 0
    for sender in senders:
        if not table.has_route(sender, sink):
            continue
        table.next_hop(sender, sink)
        table.hops(sender, sink)
        table.next_hop(sink, sender)
        reached += 1
    return reached


def _case_routing_eager_1k() -> BenchCase:
    def setup():
        return _uniform_layout(1000, _FIELD_1K, 1)

    def run(layout):
        from repro.net.routing import build_routing

        table = build_routing(layout, _RANGE_M, rng=random.Random(2))
        reached = _collection_workload(table, 1000)
        return {"nodes": 1000, "reached_senders": reached, "trees": 1000}

    return BenchCase(
        name="routing-build-eager-1k",
        summary="eager all-pairs routing build, 1k-node uniform deployment",
        setup=setup,
        run=run,
        # Gate-bearing (25% regression threshold): a single sample lets
        # one host load spike read as a code regression.
        repeats=3,
    )


def _case_routing_lazy(
    n: int, field_m: float, suites: tuple[str, ...] = SUITES
) -> BenchCase:
    def setup():
        return _uniform_layout(n, field_m, 1 if n == 1000 else 7)

    def run(layout):
        from repro.net.routing import build_routing

        table = build_routing(
            layout, _RANGE_M, rng=random.Random(2), engine="lazy"
        )
        reached = _collection_workload(table, n)
        return {
            "nodes": n,
            "reached_senders": reached,
            "trees": table.trees_computed,
            "edges": table.adjacency.n_edges,
        }

    return BenchCase(
        name=f"routing-build-lazy-{n // 1000}k",
        summary=(
            f"lazy CSR routing build + collection workload, {n}-node "
            "uniform deployment"
        ),
        setup=setup,
        run=run,
        suites=suites,
        repeats=5 if n <= 5000 else 3,
    )


def _case_sim_event_loop(
    scheduler: str, name: str, suites: tuple[str, ...] = SUITES
) -> BenchCase:
    def setup():
        return None

    def run(_state):
        from repro.sim.simulator import Simulator

        sim = Simulator(seed=1, scheduler=scheduler)

        def ticker(count):
            for _ in range(count):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ticker(30_000))
        sim.run()
        return {"events": float(sim.events_processed)}

    return BenchCase(
        name=name,
        summary=(
            "pure kernel throughput: 300k chained timeouts, "
            f"{scheduler} scheduler"
        ),
        setup=setup,
        run=run,
        suites=suites,
        # Sub-second case on a gate-bearing number: extra repeats so the
        # recorded best-of reflects the host, not one noisy slice.
        repeats=7,
    )


def _case_sim_loop_10k() -> BenchCase:
    def setup():
        from repro.models.scenario import ScenarioConfig
        from repro.topology.registry import TopologySpec

        # The scenario-compose-10k deployment, but *run*: fig-cell traffic
        # rates so bursts fill (12.8 s at 2 kb/s) and ship — a 60 s window
        # is ~4 full collection rounds per sender.
        return ScenarioConfig(
            model=MODEL_DUAL_NAME,
            topology=TopologySpec.of(
                "uniform-random",
                n=10000,
                width_m=_COMPOSE_FIELD_10K,
                height_m=_COMPOSE_FIELD_10K,
            ),
            sink=0,
            n_senders=10,
            rate_bps=2000.0,
            burst_packets=100,
            sim_time_s=60.0,
            seed=1,
            scheduler="calendar",
        )

    def run(config):
        from repro.models.scenario import build_network
        from repro.perf.phases import collect_phases, phase
        from repro.sim.simulator import Simulator

        with collect_phases() as timings:
            sim = Simulator(seed=config.seed, scheduler=config.scheduler)
            with phase("network_build"):
                built = build_network(config, sim)
            with phase("sim_loop"):
                sim.run(until=config.sim_time_s)
        ops: dict[str, float] = {
            "nodes": float(config.n_nodes),
            "agents": float(len(built.agents)),
            "events": float(sim.events_processed),
            "events_cancelled": float(sim.events_cancelled),
        }
        for name, seconds in timings.items():
            ops[f"phase.{name}_s"] = seconds
        return ops

    return BenchCase(
        name="sim-loop-10k",
        summary=(
            "full 10k-node collection round: composed dual scenario, "
            "10 senders, 60 s window, calendar scheduler"
        ),
        setup=setup,
        run=run,
        suites=("full",),
        repeats=1,
    )


def _case_medium_delivery() -> BenchCase:
    def setup():
        return _uniform_layout(100, 250.0, 3)

    def run(layout):
        from repro.channel.medium import Medium
        from repro.energy.meter import EnergyMeter
        from repro.energy.radio_specs import MICAZ
        from repro.mac.frames import Frame, FrameKind
        from repro.radio.radio import LowPowerRadio
        from repro.sim.simulator import Simulator

        sim = Simulator(seed=1)
        medium = Medium(sim, layout, name="bench")
        radios = {
            node: LowPowerRadio(
                sim, node, MICAZ, medium, EnergyMeter(f"n{node}")
            )
            for node in layout.node_ids
        }

        def sender(node):
            neighbors = medium.neighbors(node)
            if not neighbors:
                return
            dst = neighbors[0]
            for seq in range(150):
                frame = Frame(
                    kind=FrameKind.DATA,
                    src=node,
                    dst=dst,
                    payload_bits=256,
                    header_bits=88,
                    seq=seq,
                    require_ack=False,
                )
                yield radios[node].transmit(frame)

        for node in list(layout.node_ids)[:25]:
            sim.process(sender(node))
        sim.run()
        return {
            "frames_sent": float(medium.frames_sent),
            "frames_delivered": float(medium.frames_delivered),
            "events": float(sim.events_processed),
        }

    return BenchCase(
        name="medium-delivery",
        summary="per-frame medium work: 25 senders x 150 unicast frames",
        setup=setup,
        run=run,
        repeats=5,
    )


def _case_medium_delivery_10k() -> BenchCase:
    def setup():
        # Fleet construction and the neighbor-index build are untimed:
        # the case isolates the per-frame delivery path (batched energy
        # fanout, listening bitmap, incremental busy refcounts) at the
        # 10k-node composed-scenario density.
        from repro.channel.medium import Medium
        from repro.energy.meter import MeterBank
        from repro.energy.radio_specs import MICAZ
        from repro.radio.radio import LowPowerRadio
        from repro.sim.simulator import Simulator

        layout = _uniform_layout(10000, _COMPOSE_FIELD_10K, 3)
        sim = Simulator(seed=1)
        medium = Medium(sim, layout, name="bench")
        bank = MeterBank(len(layout.node_ids))
        radios = {
            node: LowPowerRadio(sim, node, MICAZ, medium, bank.meter(node))
            for node in layout.node_ids
        }
        medium._neighbor_index()
        return sim, medium, radios

    def run(state):
        from repro.mac.frames import Frame, FrameKind

        sim, medium, radios = state

        def sender(node):
            neighbors = medium.neighbors(node)
            if not neighbors:
                return
            dst = neighbors[0]
            for seq in range(100):
                frame = Frame(
                    kind=FrameKind.DATA,
                    src=node,
                    dst=dst,
                    payload_bits=256,
                    header_bits=88,
                    seq=seq,
                    require_ack=False,
                )
                yield radios[node].transmit(frame)

        for node in list(radios)[:100]:
            sim.process(sender(node))
        sim.run()
        return {
            "frames_sent": float(medium.frames_sent),
            "frames_delivered": float(medium.frames_delivered),
            "events": float(sim.events_processed),
        }

    return BenchCase(
        name="medium-delivery-10k",
        summary=(
            "batched medium hot path at scale: 100 senders x 100 unicast "
            "frames across a 10k-node fleet"
        ),
        setup=setup,
        run=run,
        suites=("full",),
        repeats=1,
    )


def _fig_cell_config(**overrides):
    from repro.models.scenario import single_hop_config

    # The fig5 bench-scale cell: 2 kb/s senders so bursts actually fill
    # and ship within the simulated window.
    defaults = dict(
        n_senders=10, burst_packets=100, rate_bps=2000.0, sim_time_s=120.0
    )
    defaults.update(overrides)
    return single_hop_config(**defaults)


def _run_cell(config) -> dict[str, float]:
    from repro.models.scenario import run_scenario
    from repro.perf.phases import collect_phases

    with collect_phases() as timings:
        result = run_scenario(config)
    ops: dict[str, float] = {
        "delivered_bits": result.delivered_bits,
        "frames_sent": result.counters.get("medium.low.sent", 0.0)
        + result.counters.get("medium.high.sent", 0.0),
        "mac.retransmissions": result.counters.get("mac.retransmissions", 0.0),
        "mac.acks_dropped": result.counters.get("mac.acks_dropped", 0.0),
    }
    for name, seconds in timings.items():
        ops[f"phase.{name}_s"] = seconds
    return ops


def _case_fig_cell() -> BenchCase:
    return BenchCase(
        name="fig-cell",
        summary="end-to-end fig-scale cell: SH dual, 10 senders, 120 s",
        setup=lambda: _fig_cell_config(),
        run=_run_cell,
        repeats=4,
    )


def _case_fig_cell_heavy() -> BenchCase:
    def setup():
        from repro.models.scenario import ScenarioConfig

        return ScenarioConfig(
            model="sensor", n_senders=35, rate_bps=2000.0, sim_time_s=60.0
        )

    return BenchCase(
        name="fig-cell-heavy",
        summary="contention-collapse cell: sensor model, 35 senders, 60 s",
        setup=setup,
        run=_run_cell,
        suites=("full",),
        # Best-of-3: at ~4 s a round the wall is noise-sensitive enough
        # that a single round can swing ±15% on a busy host.
        repeats=3,
    )


def _case_mac_contention(
    engine: str, name: str, suites: tuple[str, ...] = SUITES
) -> BenchCase:
    """A dense retry-heavy MAC cell: a 25-node line at exactly radio
    range, every node bursting acked frames at its successor.

    Each interior node is a hidden terminal to its neighbor's neighbor,
    so the cell lives in backoff-double/retry/ack-timeout churn — the
    exact machinery the flat engine replaces — and ~1k data frames plus
    their retries flow per round.  Parametrized over both MAC engines so
    the ``mac-flatten-speedup`` ratio gate pins the flat engine's win
    machine-independently.
    """

    def setup():
        return engine

    def run(mac_engine: str) -> dict[str, float]:
        from repro.channel.medium import Medium
        from repro.energy.meter import MeterBank
        from repro.energy.radio_specs import MICAZ
        from repro.mac.csma import SensorCsmaMac
        from repro.mac.frames import Frame, FrameKind
        from repro.radio.radio import LowPowerRadio
        from repro.sim.simulator import Simulator
        from repro.topology import line_layout

        n = 25
        per_sender = 40
        sim = Simulator(seed=5)
        layout = line_layout(n, 40.0)
        medium = Medium(sim, layout, "mac-bench")
        bank = MeterBank(n)
        radios = [
            LowPowerRadio(sim, i, MICAZ, medium, bank.meter(i))
            for i in range(n)
        ]
        macs = [
            SensorCsmaMac(sim, radios[i], engine=mac_engine)
            for i in range(n)
        ]

        def source(i: int):
            for _ in range(per_sender):
                yield sim.timeout(0.02)
                yield macs[i].send(
                    Frame(
                        kind=FrameKind.DATA,
                        src=i,
                        dst=i + 1,
                        payload_bits=512,
                        header_bits=64,
                        require_ack=True,
                    )
                )

        for i in range(n - 1):
            sim.process(source(i))
        sim.run()
        frames_sent = float(sum(m.sent_ok + m.sent_failed for m in macs))
        return {
            "frames_sent": frames_sent,
            "mac.retransmissions": float(
                sum(m.retransmissions for m in macs)
            ),
            "events": float(sim.events_processed),
        }

    return BenchCase(
        name=name,
        summary=(
            "retry-heavy 25-node hidden-terminal line, ~1k acked frames "
            f"({engine} MAC engine)"
        ),
        setup=setup,
        run=run,
        suites=suites,
        repeats=2,
    )


def _case_scenario_compose(
    n: int, field_m: float, suites: tuple[str, ...] = SUITES
) -> BenchCase:
    def setup():
        from repro.models.scenario import ScenarioConfig
        from repro.topology.registry import TopologySpec

        # Dense enough (mean sensor-tier degree ~10) that the pinned seed
        # yields sink-connected tiers without a connectivity resample.
        return ScenarioConfig(
            model=MODEL_DUAL_NAME,
            topology=TopologySpec.of(
                "uniform-random", n=n, width_m=field_m, height_m=field_m
            ),
            sink=0,
            n_senders=10,
            sim_time_s=10.0,
            seed=1,
        )

    def run(config):
        from repro.models.scenario import build_network
        from repro.perf.phases import collect_phases, phase
        from repro.sim.simulator import Simulator

        with collect_phases() as timings, phase("network_build"):
            sim = Simulator(seed=config.seed)
            built = build_network(config, sim)
        ops: dict[str, float] = {
            "nodes": float(config.n_nodes),
            "agents": float(len(built.agents)),
        }
        for name, seconds in timings.items():
            ops[f"phase.{name}_s"] = seconds
        return ops

    return BenchCase(
        name=f"scenario-compose-{n // 1000}k",
        summary=(
            "full network build (layout + media + flyweight agents + "
            f"lazy routes) for a {n}-node composed dual-radio scenario"
        ),
        setup=setup,
        run=run,
        suites=suites,
        repeats=3,
    )


def _case_churn_1k() -> BenchCase:
    """The scenario-compose-1k deployment run *mortal*: 10% of the fleet
    dies on a scripted schedule spread across the window.

    Every death pays the full fault path — MAC/radio power-down, medium
    epoch repair with busy-refcount replay, lazy routing re-invalidation
    — so this case gates the cost of topology churn at scale, which no
    immortal case exercises.
    """

    def setup():
        from repro.faults import FaultPlan
        from repro.models.scenario import ScenarioConfig
        from repro.topology.registry import TopologySpec

        n = 1000
        sim_time_s = 30.0
        # 100 victims spread over node ids (never sink 0), one death
        # every ~0.27 s of simulated time: the topology is never stable
        # for long, which is the point.
        n_deaths = n // 10
        step = sim_time_s * 0.9 / n_deaths
        plan = FaultPlan(
            crashes=tuple(
                (step * (i + 1), 1 + (i * 9) % (n - 1))
                for i in range(n_deaths)
            )
        )
        return ScenarioConfig(
            model=MODEL_DUAL_NAME,
            topology=TopologySpec.of(
                "uniform-random",
                n=n,
                width_m=_COMPOSE_FIELD_1K,
                height_m=_COMPOSE_FIELD_1K,
            ),
            sink=0,
            n_senders=10,
            rate_bps=2000.0,
            burst_packets=100,
            sim_time_s=sim_time_s,
            seed=1,
            scheduler="calendar",
            faults=plan,
        )

    def run(config):
        from repro.models.scenario import run_scenario
        from repro.perf.phases import collect_phases

        with collect_phases() as timings:
            result = run_scenario(config)
        ops: dict[str, float] = {
            "nodes": float(config.n_nodes),
            "deaths": result.counters["faults.deaths"],
            "epochs": result.counters["faults.epochs"],
            "delivered_bits": result.delivered_bits,
            "power_down_drops": result.counters["faults.power_down_drops"],
        }
        for name, seconds in timings.items():
            ops[f"phase.{name}_s"] = seconds
        return ops

    return BenchCase(
        name="churn-1k",
        summary=(
            "mortal 1k-node collection round: 100 scripted deaths over a "
            "30 s window (fault path + epoch repair at scale)"
        ),
        setup=setup,
        run=run,
        repeats=2,
    )


def _case_routing_policy_1k() -> BenchCase:
    """One 1k-node collection round's routing work per registered policy.

    ``hops`` runs the production default at this scale (the lazy BFS
    engine); the energy policies run the Dijkstra cost engine with static
    (tx-energy) and dynamic (residual-energy, synthetic depletion
    spread) cost models.  Gates the cost engine's build+query price
    against the BFS baseline it extends.
    """

    def setup():
        from repro.net.csr import CsrGraph

        layout = _uniform_layout(1000, _FIELD_1K, 1)
        return layout, CsrGraph.from_layout(layout, _RANGE_M)

    def run(prepared):
        from repro.net.policy import (
            ROUTING_POLICIES,
            RoutingPolicyContext,
            build_cost_model,
        )
        from repro.net.routing import DijkstraRoutingTable, build_routing

        layout, graph = prepared
        # Synthetic depletion spread so the residual policy's factors are
        # non-uniform (a flat fleet would degenerate to tx-energy).
        context = RoutingPolicyContext(
            packet_bits=320,
            residual_fraction=lambda node: 1.0 - (node % 97) / 128.0,
        )
        reached = 0
        trees = 0
        for policy in ROUTING_POLICIES.names():
            cost_model = build_cost_model(policy, context)
            if cost_model is None:
                table = build_routing(
                    layout, _RANGE_M, rng=random.Random(2), engine="lazy"
                )
            else:
                table = DijkstraRoutingTable(
                    graph, cost_model, layout=layout, rng=random.Random(2)
                )
            reached += _collection_workload(table, 1000)
            trees += table.trees_computed
        return {
            "nodes": 1000.0,
            "policies": float(len(ROUTING_POLICIES.names())),
            "reached_senders": float(reached),
            "trees": float(trees),
        }

    return BenchCase(
        name="routing-policy-1k",
        summary=(
            "1k-node collection-round routing per policy: lazy BFS (hops) "
            "vs the Dijkstra cost engine (tx-energy, residual-energy)"
        ),
        setup=setup,
        run=run,
        repeats=3,
    )


#: ``"dual"`` without importing the model layer at module import time.
MODEL_DUAL_NAME = "dual"

#: Machine-independent gates checked after every suite run: the lazy
#: engine must beat the eager all-pairs baseline, and the calendar
#: scheduler the heap, by at least these factors on the acceptance
#: workloads.
RATIO_GATES = (
    RatioGate(
        name="routing-1k-speedup",
        slow_case="routing-build-eager-1k",
        fast_case="routing-build-lazy-1k",
        min_ratio=10.0,
    ),
    # The calendar agenda must keep beating the heap on the identical
    # same-run workload (measured ~2.1x): this carries the kernel ~2x
    # acceptance across hosts, where the raw events/s floor cannot.
    RatioGate(
        name="calendar-scheduler-speedup",
        slow_case="sim-event-loop-heap",
        fast_case="sim-event-loop",
        min_ratio=1.5,
    ),
    # The flat MAC engine must keep beating the historical generator
    # engine on the identical retry-heavy contention cell (measured
    # ~1.5-1.7x after the shared-path memoization landed; the floor
    # leaves headroom for host jitter): this carries the PR-8
    # MAC-flattening acceptance across hosts, where fig-cell-heavy's
    # absolute wall cannot.
    RatioGate(
        name="mac-flatten-speedup",
        slow_case="mac-contention-1k-generator",
        fast_case="mac-contention-1k",
        min_ratio=1.2,
    ),
)

#: Wall-normalized throughput floors: the calendar-scheduler kernel case
#: must sustain at least 1M events/s (measured ~1.6M on a single-core
#: dev box; the generous floor absorbs loaded CI runners while catching
#: a lost fast path or an accidentally quadratic agenda).
THROUGHPUT_GATES = (
    ThroughputGate(
        name="sim-events-per-sec",
        case="sim-event-loop",
        ops_key="events",
        min_per_s=1.0e6,
    ),
)

#: Absolute acceptance budgets (checked whenever their case ran): the
#: 10k-node composed scenario must stay a seconds-scale build on any
#: CI-class host, per the PR-5 acceptance criteria, and the full 10k-node
#: collection round must finish inside 20 s (measured ~3 s after the
#: PR-7 batched-medium + incremental-BFS work; the generous budget
#: absorbs loaded CI runners while catching a lost fast path).
WALL_BUDGETS = (
    WallBudget(
        name="scenario-10k-build-budget",
        case="scenario-compose-10k",
        max_wall_s=5.0,
    ),
    WallBudget(
        name="sim-loop-10k-budget",
        case="sim-loop-10k",
        max_wall_s=20.0,
    ),
    # The mortal 1k-node round: 100 deaths' worth of epoch repair and
    # routing invalidation must stay cheap relative to the traffic it
    # disrupts (measured ~2 s on a dev box; the budget absorbs loaded CI
    # runners while catching an accidentally quadratic repair path).
    WallBudget(
        name="churn-1k-budget",
        case="churn-1k",
        max_wall_s=10.0,
    ),
    # Three policies' worth of 1k-node collection routing (33 trees
    # each): the Dijkstra cost engine must stay in the lazy BFS engine's
    # latency class (measured well under 1 s on a dev box; the budget
    # absorbs loaded CI runners while catching an accidentally quadratic
    # relaxation loop).
    WallBudget(
        name="routing-policy-1k-budget",
        case="routing-policy-1k",
        max_wall_s=10.0,
    ),
)


def all_cases() -> tuple[BenchCase, ...]:
    """Every declared case, in run order."""
    return (
        _case_routing_eager_1k(),
        _case_routing_lazy(1000, _FIELD_1K),
        _case_routing_policy_1k(),
        _case_routing_lazy(5000, _FIELD_5K),
        _case_routing_lazy(10000, _FIELD_10K, suites=("full",)),
        # The gated kernel case runs the calendar scheduler (the tuned
        # path the acceptance criteria pin); the heap companion keeps the
        # byte-identity default's trajectory visible alongside it.
        _case_sim_event_loop("calendar", "sim-event-loop"),
        _case_sim_event_loop("heap", "sim-event-loop-heap"),
        _case_sim_loop_10k(),
        _case_medium_delivery(),
        _case_medium_delivery_10k(),
        # The gated MAC case runs the flat engine (the tuned default);
        # the generator companion keeps the byte-identity reference's
        # trajectory visible and feeds the mac-flatten-speedup gate.
        _case_mac_contention("flat", "mac-contention-1k"),
        _case_mac_contention("generator", "mac-contention-1k-generator"),
        _case_fig_cell(),
        _case_fig_cell_heavy(),
        _case_scenario_compose(1000, _COMPOSE_FIELD_1K),
        _case_scenario_compose(10000, _COMPOSE_FIELD_10K, suites=("full",)),
        _case_churn_1k(),
    )


def bench_cases(suite: str = "smoke") -> list[BenchCase]:
    """The cases belonging to ``suite`` (ValueError for unknown names)."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; expected one of {SUITES}")
    return [case for case in all_cases() if suite in case.suites]


def ratio_gates(case_names: typing.Collection[str]) -> list[RatioGate]:
    """The gates whose two cases are both present in ``case_names``."""
    return [
        gate
        for gate in RATIO_GATES
        if gate.slow_case in case_names and gate.fast_case in case_names
    ]


def wall_budgets(case_names: typing.Collection[str]) -> list[WallBudget]:
    """The budgets whose case is present in ``case_names``."""
    return [budget for budget in WALL_BUDGETS if budget.case in case_names]


def throughput_gates(
    case_names: typing.Collection[str],
) -> list[ThroughputGate]:
    """The throughput floors whose case is present in ``case_names``."""
    return [gate for gate in THROUGHPUT_GATES if gate.case in case_names]
