"""Run the bench suite, persist ``BENCH_<rev>.json``, gate regressions.

The perf trajectory lives in the repository as ``BENCH_<rev>.json`` files:
one per recorded revision, each holding the suite's wall times (best of
``repeats``) and ops counters.  ``repro bench`` runs a suite, writes the
current revision's file, and compares against a baseline — by default the
most recently modified ``BENCH_*.json`` of a *different* revision in the
output directory — failing when any shared case slowed down by more than
the threshold, or when a machine-independent ratio gate
(:data:`repro.perf.suite.RATIO_GATES`) breaks.

Wall times only compare meaningfully on similar hardware; the committed
baseline is regenerated whenever the trajectory moves (commit the new
``BENCH_<rev>.json`` alongside the change that earned it).  The ratio
gates carry the acceptance criteria across machines.
"""

from __future__ import annotations

import dataclasses
import datetime
import gc
import json
import pathlib
import platform
import subprocess
import sys
import time
import typing

from repro.perf.suite import (
    BenchCase,
    bench_cases,
    ratio_gates,
    throughput_gates,
    wall_budgets,
)

#: Format version of the BENCH json files.
BENCH_SCHEMA = 1

#: File-name pattern of persisted reports.
BENCH_GLOB = "BENCH_*.json"


@dataclasses.dataclass
class CaseResult:
    """One case's measurement: best wall time over ``repeats`` runs."""

    wall_s: float
    repeats: int
    ops: dict[str, float]


def host_key() -> str:
    """A coarse hardware/interpreter identity for wall-time comparability.

    Wall times only gate against a baseline recorded on the same kind of
    host; this key is deliberately coarse (OS, architecture, Python
    major.minor) so routine kernel/image bumps on CI runners don't break
    the chain, while a laptop-recorded baseline never wall-gates a CI
    runner.
    """
    return (
        f"{platform.system()}-{platform.machine()}"
        f"-py{sys.version_info.major}.{sys.version_info.minor}"
    )


@dataclasses.dataclass
class BenchReport:
    """One suite run on one revision."""

    rev: str
    suite: str
    created: str
    python: str
    platform: str
    results: dict[str, CaseResult]
    checks: dict[str, float] = dataclasses.field(default_factory=dict)
    host: str = ""

    def to_json(self) -> str:
        payload = {
            "schema": BENCH_SCHEMA,
            "rev": self.rev,
            "suite": self.suite,
            "created": self.created,
            "python": self.python,
            "platform": self.platform,
            "host": self.host,
            "results": {
                name: dataclasses.asdict(result)
                for name, result in self.results.items()
            },
            "checks": self.checks,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


@dataclasses.dataclass
class Regression:
    """A case that slowed past the threshold vs the baseline."""

    case: str
    current_s: float
    baseline_s: float

    @property
    def ratio(self) -> float:
        return self.current_s / self.baseline_s if self.baseline_s else float("inf")

    def describe(self) -> str:
        return (
            f"{self.case}: {self.current_s:.4f}s vs baseline "
            f"{self.baseline_s:.4f}s ({(self.ratio - 1.0) * 100.0:+.1f}%)"
        )


def git_rev(directory: str | pathlib.Path = ".") -> str:
    """The short git revision of ``directory``, or ``"local"`` without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(directory),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def run_case(
    case: BenchCase,
    repeats: int | None = None,
    profile_dir: str | pathlib.Path | None = None,
) -> CaseResult:
    """Measure one case: untimed setup, then best-of-``repeats`` runs.

    With ``profile_dir``, one *extra* round runs under :mod:`cProfile`
    after the timed ones and its stats land in
    ``<profile_dir>/<case>.pstats`` (load with :mod:`pstats` or snakeviz).
    The profiled round is never timed: profiling overhead would poison the
    recorded walls, so the artifact rides along without touching them.
    """
    state = case.setup()
    rounds = max(1, repeats if repeats is not None else case.repeats)
    best = float("inf")
    ops: dict[str, float] = {}
    for _ in range(rounds):
        # Start each round from a settled heap: without this, garbage
        # surviving from *earlier cases* inflates this case's collector
        # pauses, coupling measurements that should be independent.
        gc.collect()
        start = time.perf_counter()
        ops = dict(case.run(state))
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    if profile_dir is not None:
        import cProfile

        target = pathlib.Path(profile_dir)
        target.mkdir(parents=True, exist_ok=True)
        gc.collect()
        profiler = cProfile.Profile()
        profiler.enable()
        case.run(state)
        profiler.disable()
        profiler.dump_stats(str(target / f"{case.name}.pstats"))
    return CaseResult(wall_s=best, repeats=rounds, ops=ops)


def run_suite(
    suite: str = "smoke",
    repeats: int | None = None,
    rev: str | None = None,
    log: typing.Callable[[str], None] | None = None,
    profile_dir: str | pathlib.Path | None = None,
) -> BenchReport:
    """Run every case of ``suite`` and evaluate the ratio gates.

    ``profile_dir`` (optional) additionally captures one cProfile round
    per case as ``<profile_dir>/<case>.pstats`` — see :func:`run_case`.
    """
    cases = bench_cases(suite)
    results: dict[str, CaseResult] = {}
    for case in cases:
        if log is not None:
            log(f"[bench] {case.name}: {case.summary} ...")
        result = run_case(case, repeats=repeats, profile_dir=profile_dir)
        results[case.name] = result
        if log is not None:
            log(
                f"[bench] {case.name}: {result.wall_s:.4f}s "
                f"(best of {result.repeats})"
            )
    checks = {
        gate.name: results[gate.slow_case].wall_s / results[gate.fast_case].wall_s
        for gate in ratio_gates(results)
    }
    # Budget checks record the measured wall under the budget's name so
    # the persisted report shows how much headroom each acceptance
    # criterion had.
    checks.update(
        {
            budget.name: results[budget.case].wall_s
            for budget in wall_budgets(results)
        }
    )
    # Throughput checks record the achieved rate (ops/s) for the same
    # reason; a case missing its ops key records 0.0 — failing loudly at
    # the gate rather than silently dropping the check.
    checks.update(
        {
            gate.name: (
                results[gate.case].ops.get(gate.ops_key, 0.0)
                / results[gate.case].wall_s
                if results[gate.case].wall_s > 0
                else 0.0
            )
            for gate in throughput_gates(results)
        }
    )
    return BenchReport(
        rev=rev or git_rev(),
        suite=suite,
        # Stamped in UTC so recorded order is comparable across machines.
        created=time.strftime("%Y-%m-%dT%H:%M:%S+00:00", time.gmtime()),
        python=platform.python_version(),
        platform=platform.platform(),
        host=host_key(),
        results=results,
        checks=checks,
    )


def failed_gates(report: BenchReport) -> list[str]:
    """Failures of the machine-independent ratio gates and wall budgets."""
    failures = []
    for gate in ratio_gates(report.results):
        ratio = report.checks.get(gate.name)
        if ratio is not None and ratio < gate.min_ratio:
            failures.append(
                f"{gate.name}: {gate.slow_case} / {gate.fast_case} = "
                f"{ratio:.1f}x, below the required {gate.min_ratio:g}x"
            )
    for budget in wall_budgets(report.results):
        wall = report.results[budget.case].wall_s
        if wall > budget.max_wall_s:
            failures.append(
                f"{budget.name}: {budget.case} took {wall:.2f}s, over the "
                f"{budget.max_wall_s:g}s acceptance budget"
            )
    for gate in throughput_gates(report.results):
        result = report.results[gate.case]
        rate = (
            result.ops.get(gate.ops_key, 0.0) / result.wall_s
            if result.wall_s > 0
            else 0.0
        )
        if rate < gate.min_per_s:
            failures.append(
                f"{gate.name}: {gate.case} sustained "
                f"{rate / 1e6:.2f}M {gate.ops_key}/s, below the required "
                f"{gate.min_per_s / 1e6:g}M/s floor"
            )
    return failures


def write_report(
    report: BenchReport, directory: str | pathlib.Path = "."
) -> pathlib.Path:
    """Persist ``report`` as ``<directory>/BENCH_<rev>.json``."""
    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{report.rev}.json"
    path.write_text(report.to_json() + "\n")
    return path


def load_report(path: str | pathlib.Path) -> BenchReport:
    """Read a persisted report (ValueError on schema or shape mismatch)."""
    payload = json.loads(pathlib.Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: BENCH report is not a JSON object")
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: BENCH schema {schema!r} (this build reads {BENCH_SCHEMA})"
        )
    raw_results = payload.get("results", {})
    if not isinstance(raw_results, dict):
        raise ValueError(f"{path}: BENCH results is not a JSON object")
    results = {}
    for name, entry in raw_results.items():
        try:
            results[name] = CaseResult(
                wall_s=float(entry["wall_s"]),
                repeats=int(entry.get("repeats", 1)),
                ops={k: float(v) for k, v in entry.get("ops", {}).items()},
            )
        except (KeyError, TypeError, ValueError):
            # A hand-edited or older-generation entry missing its wall
            # time (or carrying a non-numeric one) drops out of the
            # comparison instead of aborting it: the remaining cases and
            # the ratio gates still gate the run.
            continue
    return BenchReport(
        rev=str(payload.get("rev", "unknown")),
        suite=str(payload.get("suite", "unknown")),
        created=str(payload.get("created", "")),
        python=str(payload.get("python", "")),
        platform=str(payload.get("platform", "")),
        host=str(payload.get("host", "")),
        results=results,
        checks={k: float(v) for k, v in payload.get("checks", {}).items()},
    )


def _created_stamp(path: pathlib.Path) -> float:
    """The report's creation time as a POSIX timestamp (-1 if unreadable).

    Parsed as a datetime rather than compared as text: older reports may
    carry local-zone offsets, and lexicographic order of offset-bearing
    stamps is not chronological.
    """
    try:
        payload = json.loads(path.read_text())
        raw = str(payload.get("created", ""))
        stamp = datetime.datetime.fromisoformat(raw)
    except (OSError, ValueError, AttributeError, TypeError):
        # Unreadable, non-object, or unparsable-stamp files sort last
        # instead of crashing baseline discovery.
        return -1.0
    if stamp.tzinfo is None:
        stamp = stamp.replace(tzinfo=datetime.timezone.utc)
    return stamp.timestamp()


def _dirty_bench_names(directory: str | pathlib.Path) -> set[str] | None:
    """Basenames of BENCH files git considers dirty in ``directory``.

    Dirty means untracked or modified relative to HEAD — a bench run
    someone forgot to commit (or a hand-edited baseline) that must not
    silently become the regression baseline.  Returns ``None`` when the
    directory is not inside a git work tree (or git is unavailable), in
    which case every candidate is eligible — a plain output directory
    has no notion of committed.
    """
    try:
        status = subprocess.run(
            [
                "git",
                "status",
                "--porcelain",
                "--untracked-files=all",
                "--",
                BENCH_GLOB,
            ],
            cwd=str(directory),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if status.returncode != 0:
        return None
    dirty: set[str] = set()
    for line in status.stdout.splitlines():
        # Porcelain v1: "XY path" (paths relative to the repo root, so
        # compare basenames — BENCH names are revision-unique).  Renames
        # read "XY old -> new".
        path = line[3:].split(" -> ")[-1].strip().strip('"')
        if path:
            dirty.add(pathlib.PurePosixPath(path).name)
    return dirty


def find_baseline(
    directory: str | pathlib.Path, exclude_rev: str | None = None
) -> pathlib.Path | None:
    """The newest ``BENCH_*.json`` in ``directory`` not from ``exclude_rev``.

    Ordered by each report's recorded ``created`` stamp (parsed,
    zone-aware), with file mtime as the tie-break: in a fresh git
    checkout every committed baseline shares one checkout-time mtime,
    which says nothing about recording order.

    Inside a git work tree, uncommitted or locally modified BENCH files
    are not baseline material (a leftover local run would otherwise mask
    real regressions — or invent them); only committed, unmodified
    reports are considered.  Outside git every report is eligible.
    """
    candidates = [
        path
        for path in pathlib.Path(directory).glob(BENCH_GLOB)
        if exclude_rev is None or path.name != f"BENCH_{exclude_rev}.json"
    ]
    dirty = _dirty_bench_names(directory)
    if dirty is not None:
        candidates = [path for path in candidates if path.name not in dirty]
    if not candidates:
        return None
    return max(
        candidates,
        key=lambda path: (_created_stamp(path), path.stat().st_mtime),
    )


def walls_comparable(current: BenchReport, baseline: BenchReport) -> bool:
    """Whether the two reports' wall times can be meaningfully compared.

    True when both carry the same :func:`host_key` (or the baseline
    predates host tagging, in which case callers should decide — see
    ``repro bench --compare-across-hosts``).
    """
    return bool(current.host and baseline.host and current.host == baseline.host)


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = 0.25,
    min_wall_s: float = 0.1,
) -> list[Regression]:
    """Cases shared with ``baseline`` that slowed by more than ``threshold``.

    ``threshold`` is fractional: 0.25 tolerates a 25% slowdown.  Cases
    present on only one side are ignored (the suite grows over time), and
    so are cases whose baseline wall time is below ``min_wall_s``: on a
    shared CI runner the absolute delta of a sub-100 ms case is scheduler
    noise, not signal — those cases are guarded by the machine-independent
    ratio gates and their ops counters instead.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    regressions = []
    for name, result in current.results.items():
        base = baseline.results.get(name)
        if base is None or base.wall_s < min_wall_s or base.wall_s <= 0:
            continue
        if result.wall_s > base.wall_s * (1.0 + threshold):
            regressions.append(
                Regression(
                    case=name,
                    current_s=result.wall_s,
                    baseline_s=base.wall_s,
                )
            )
    return regressions
