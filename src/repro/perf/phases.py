"""Named wall-clock phase accumulators for the scenario harness.

The figure benchmarks and ``repro bench`` want to know *where* a run's
time went — routing build vs the sim event loop — without polluting
:class:`~repro.stats.metrics.RunResult` (results are digested for the
determinism goldens; wall times are inherently nondeterministic and must
never enter them).  So the scenario harness reports phases out-of-band
into this module-level accumulator, and collectors opt in around a run:

    with collect_phases() as timings:
        run_scenario(config)
    timings  # {"network_build": ..., "routing_build": ..., "sim_loop": ...}

When no collector is active (the default), :func:`phase` degrades to two
``perf_counter`` calls and no storage.  The accumulator is per-process:
runs fanned out to worker processes by the sweep runner accumulate in the
workers and are not transported back — serial (in-process) execution is
the supported way to collect phases.
"""

from __future__ import annotations

import contextlib
import time
import typing

#: The active accumulator, or None when collection is disabled.
_active: dict[str, float] | None = None


@contextlib.contextmanager
def collect_phases() -> typing.Iterator[dict[str, float]]:
    """Enable phase collection; yields the dict timings accumulate into.

    Nested collectors stack: the inner collector sees only its own span,
    and the outer one resumes (without the inner span's entries) when the
    inner exits.
    """
    global _active
    previous = _active
    _active = timings = {}
    try:
        yield timings
    finally:
        _active = previous


def record(name: str, seconds: float) -> None:
    """Add ``seconds`` to phase ``name`` (no-op when collection is off)."""
    if _active is not None:
        _active[name] = _active.get(name, 0.0) + seconds


@contextlib.contextmanager
def phase(name: str) -> typing.Iterator[None]:
    """Time the enclosed block into phase ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record(name, time.perf_counter() - start)


def phase_snapshot() -> dict[str, float]:
    """A copy of the currently accumulated timings (empty when off)."""
    return dict(_active) if _active is not None else {}
