"""Performance measurement: phase timers, the bench suite and its gate.

* :mod:`repro.perf.phases` — lightweight named wall-clock accumulators the
  scenario harness reports into (routing build vs sim loop), consumed by
  the fig benchmarks' JSON artifact and by ``repro bench``.
* :mod:`repro.perf.suite` — the declared benchmark cases (``smoke`` ⊂
  ``full``).
* :mod:`repro.perf.bench` — runs a suite, writes ``BENCH_<rev>.json``,
  compares against a baseline and gates on a regression threshold.

Only the phase accumulator is re-exported here: the scenario harness
imports it, so this package ``__init__`` must stay free of imports that
reach back into the model layer (``suite``/``bench`` import scenarios —
import them by module path).
"""

from repro.perf.phases import collect_phases, phase, phase_snapshot, record

__all__ = ["collect_phases", "phase", "phase_snapshot", "record"]
