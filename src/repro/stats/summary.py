"""Aggregation of replicated runs into mean ± CI summaries."""

from __future__ import annotations

import dataclasses
import typing

from repro.stats.confidence import Estimate, mean_confidence
from repro.stats.metrics import ENERGY_TOTAL, RunResult


@dataclasses.dataclass
class ReplicatedSummary:
    """Mean ± 95% CI of the paper's metrics over repeated runs.

    Attributes
    ----------
    goodput / normalized_energy_j_per_kbit / mean_delay_s:
        Estimates across replicas.  Replicas that delivered nothing are
        excluded from the energy estimate (their normalized energy is
        infinite) and counted in ``undelivered_runs``.
    """

    goodput: Estimate
    normalized_energy_j_per_kbit: Estimate | None
    mean_delay_s: Estimate
    n_runs: int
    undelivered_runs: int

    def row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "goodput": self.goodput.mean,
            "goodput_ci": self.goodput.half_width,
            "energy_j_per_kbit": (
                self.normalized_energy_j_per_kbit.mean
                if self.normalized_energy_j_per_kbit is not None
                else float("inf")
            ),
            "energy_ci": (
                self.normalized_energy_j_per_kbit.half_width
                if self.normalized_energy_j_per_kbit is not None
                else 0.0
            ),
            "delay_s": self.mean_delay_s.mean,
            "delay_ci": self.mean_delay_s.half_width,
        }


def summarize_runs(
    results: typing.Sequence[RunResult],
    energy_key: str = ENERGY_TOTAL,
    confidence: float = 0.95,
) -> ReplicatedSummary:
    """Summarize replicated :class:`RunResult` values.

    Raises
    ------
    ValueError
        If ``results`` is empty.
    """
    if not results:
        raise ValueError("no runs to summarize")
    goodputs = [result.goodput for result in results]
    delays = [result.mean_delay_s for result in results]
    energies = [
        result.normalized_energy_j_per_kbit(energy_key)
        for result in results
        if result.delivered_bits > 0
    ]
    return ReplicatedSummary(
        goodput=mean_confidence(goodputs, confidence),
        normalized_energy_j_per_kbit=(
            mean_confidence(energies, confidence) if energies else None
        ),
        mean_delay_s=mean_confidence(delays, confidence),
        n_runs=len(results),
        undelivered_runs=len(results) - len(energies),
    )
