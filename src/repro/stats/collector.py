"""Sink-side measurement: delivery counts, delays, duplicate detection."""

from __future__ import annotations

import typing

from repro.net.packets import DataPacket

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator


class SinkCollector:
    """Records every packet delivered at the sink.

    The collector is the models' ``deliver`` callback.  It tracks the
    goodput numerator (payload bits, duplicates excluded), per-packet
    end-to-end delay (generation → sink, buffering included — the paper's
    delay metric) and per-source tallies.
    """

    def __init__(self, sim: "Simulator", sink_id: int):
        self.sim = sim
        self.sink_id = sink_id
        self.packets_delivered = 0
        self.bits_delivered = 0
        self.duplicates = 0
        self.delays_s: list[float] = []
        self.hops: list[int] = []
        self.per_source: dict[int, int] = {}
        self._seen_ids: set[int] = set()

    def deliver(self, packet: DataPacket) -> None:
        """Accept ``packet`` at the sink."""
        if packet.dst != self.sink_id:
            raise ValueError(
                f"sink {self.sink_id} received a packet addressed to {packet.dst}"
            )
        if packet.packet_id in self._seen_ids:
            self.duplicates += 1
            return
        self._seen_ids.add(packet.packet_id)
        self.packets_delivered += 1
        self.bits_delivered += packet.payload_bits
        self.delays_s.append(self.sim.now - packet.created_s)
        self.hops.append(packet.hops)
        self.per_source[packet.src] = self.per_source.get(packet.src, 0) + 1

    @property
    def mean_delay_s(self) -> float:
        """Average end-to-end delay over delivered packets (0 if none)."""
        return sum(self.delays_s) / len(self.delays_s) if self.delays_s else 0.0

    @property
    def max_delay_s(self) -> float:
        """Worst-case delivered-packet delay (0 if none)."""
        return max(self.delays_s) if self.delays_s else 0.0

    @property
    def mean_hops(self) -> float:
        """Average forwarding hops of delivered packets (0 if none)."""
        return sum(self.hops) / len(self.hops) if self.hops else 0.0
