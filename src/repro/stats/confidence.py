"""Student-t confidence intervals (the paper reports 95% CIs over 20 runs)."""

from __future__ import annotations

import dataclasses
import math
import typing

from scipy import stats as scipy_stats


@dataclasses.dataclass(frozen=True)
class Estimate:
    """A sample mean with its symmetric confidence half-width.

    Attributes
    ----------
    mean / half_width:
        Point estimate and CI half width (0 when n < 2).
    n:
        Sample size.
    confidence:
        Confidence level of the interval.
    """

    mean: float
    half_width: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        """Lower CI bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper CI bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.6g} ± {self.half_width:.3g}"


def mean_confidence(
    values: typing.Sequence[float], confidence: float = 0.95
) -> Estimate:
    """Sample mean of ``values`` with a Student-t confidence interval.

    Raises
    ------
    ValueError
        For an empty sample or a confidence level outside (0, 1).
    """
    if not values:
        raise ValueError("cannot estimate from an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return Estimate(mean=mean, half_width=0.0, n=n, confidence=confidence)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    std_error = math.sqrt(variance / n)
    t_crit = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, n - 1))
    return Estimate(
        mean=mean, half_width=t_crit * std_error, n=n, confidence=confidence
    )
