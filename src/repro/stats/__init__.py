"""Metrics, confidence intervals and run summaries."""

from repro.stats.collector import SinkCollector
from repro.stats.confidence import Estimate, mean_confidence
from repro.stats.metrics import (
    ENERGY_HIGH_RADIO,
    ENERGY_LOW_RADIO,
    ENERGY_SENSOR_FULL,
    ENERGY_SENSOR_HEADER,
    ENERGY_SENSOR_IDEAL,
    ENERGY_TOTAL,
    RunResult,
    j_per_bit_to_j_per_kbit,
    merge_counters,
)
from repro.stats.summary import ReplicatedSummary, summarize_runs

__all__ = [
    "ENERGY_HIGH_RADIO",
    "ENERGY_LOW_RADIO",
    "ENERGY_SENSOR_FULL",
    "ENERGY_SENSOR_HEADER",
    "ENERGY_SENSOR_IDEAL",
    "ENERGY_TOTAL",
    "Estimate",
    "ReplicatedSummary",
    "RunResult",
    "SinkCollector",
    "j_per_bit_to_j_per_kbit",
    "mean_confidence",
    "merge_counters",
    "summarize_runs",
]
