"""Prototype emulation harness (paper Section 4.2, Figures 11–12)."""

from repro.testbed.accounting import (
    EnergyBreakdown,
    account_experiment,
    account_mote,
)
from repro.testbed.emulation import (
    TMOTE_CC2420,
    WIFI_INTER_FRAME_S,
    EmulatedWifiMac,
    SensorLink,
)
from repro.testbed.eventlog import EventLog, LogEntry
from repro.testbed.experiment import (
    PrototypeConfig,
    PrototypeResult,
    default_threshold_sweep,
    run_prototype,
    sweep_thresholds,
)

__all__ = [
    "EmulatedWifiMac",
    "EnergyBreakdown",
    "EventLog",
    "LogEntry",
    "PrototypeConfig",
    "PrototypeResult",
    "SensorLink",
    "TMOTE_CC2420",
    "WIFI_INTER_FRAME_S",
    "account_experiment",
    "account_mote",
    "default_threshold_sweep",
    "run_prototype",
    "sweep_thresholds",
]
