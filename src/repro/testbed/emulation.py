"""The Tmote-Sky link and the emulated 802.11 MAC wrapper (Section 4.2).

The paper's prototype ran on Tmote Sky motes, which have only a CC2420:
"Because the time and energy characteristics of IEEE 802.11 radios have
been well studied in literature, we chose to emulate the high-power radio.
A second MAC interface, which is basically a wrapper around the standard
TinyOS MAC interface, was implemented to make the emulation of the IEEE
802.11 radio transparent to BCP."

* :class:`SensorLink` — the real CC2420 channel between the two motes: a
  clean point-to-point link (the paper deliberately isolates BCP "from
  other external factors (e.g., interference, bad channel conditions)").
* :class:`EmulatedWifiMac` — the wrapper MAC: transfers take the emulated
  radio's airtime; wake-up, transmission and reception events are logged so
  the accountant can charge the emulated radio's published energy numbers.
"""

from __future__ import annotations

import typing

from repro.energy.radio_specs import MICAZ, RadioSpec
from repro.testbed import eventlog
from repro.testbed.eventlog import EventLog

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.simulator import Simulator

#: The Tmote Sky's CC2420 shares the Micaz radio's Table 1 characteristics.
TMOTE_CC2420: RadioSpec = MICAZ.replace(name="CC2420 (Tmote Sky)")

#: Inter-frame gap between back-to-back emulated 802.11 frames (DIFS plus a
#: minimal backoff; there is no contention on a two-node testbed).
WIFI_INTER_FRAME_S = 3e-4


class SensorLink:
    """Point-to-point CC2420 link between the two motes."""

    def __init__(self, sim: "Simulator", log: EventLog, spec: RadioSpec = TMOTE_CC2420):
        self.sim = sim
        self.log = log
        self.spec = spec

    def transfer(
        self, src: str, dst: str, payload_bytes: int, detail: typing.Any = None
    ):
        """Send one sensor frame; returns the completion event.

        Logs a tx at ``src`` and an rx at ``dst``, both spanning the
        frame's airtime (payload + CC2420 header).
        """
        bits = payload_bytes * 8 + self.spec.header_bits
        duration = bits / self.spec.rate_bps
        now = self.sim.now
        self.log.log(now, src, eventlog.SENSOR_TX, duration, detail)
        self.log.log(now, dst, eventlog.SENSOR_RX, duration, detail)
        return self.sim.timeout(duration)


class EmulatedWifiMac:
    """Wrapper MAC presenting an 802.11-like interface on one mote.

    Parameters
    ----------
    sim / log / mote:
        Kernel, the shared experiment log, owning mote name.
    spec:
        The emulated high-power radio (its Table 1 characteristics drive
        the post-hoc energy accounting).
    """

    def __init__(
        self,
        sim: "Simulator",
        log: EventLog,
        mote: str,
        spec: RadioSpec,
    ):
        self.sim = sim
        self.log = log
        self.mote = mote
        self.spec = spec
        self.is_on = False

    def wake(self):
        """Emulate switching the 802.11 radio on; returns completion event.

        Logged as a wake-up event; the accountant charges ``e_wakeup_j``.
        """
        self.log.log(self.sim.now, self.mote, eventlog.WIFI_WAKEUP)
        self.is_on = True
        return self.sim.timeout(self.spec.t_wakeup_s)

    def sleep(self) -> None:
        """Emulate switching the radio off (instantaneous, negligible cost)."""
        self.log.log(self.sim.now, self.mote, eventlog.WIFI_SLEEP)
        self.is_on = False

    def frame_airtime_s(self, payload_bytes: int) -> float:
        """Airtime of one emulated frame (payload + 802.11 header)."""
        bits = payload_bytes * 8 + self.spec.header_bits
        return bits / self.spec.rate_bps

    def transfer_frame(
        self,
        peer: "EmulatedWifiMac",
        payload_bytes: int,
        detail: typing.Any = None,
    ):
        """Send one emulated frame to ``peer``; returns the completion event.

        Both ends must be awake; tx is logged here and rx at the peer.
        """
        if not self.is_on or not peer.is_on:
            raise RuntimeError("both emulated radios must be awake to transfer")
        duration = self.frame_airtime_s(payload_bytes)
        now = self.sim.now
        self.log.log(now, self.mote, eventlog.WIFI_TX, duration, detail)
        self.log.log(now, peer.mote, eventlog.WIFI_RX, duration, detail)
        return self.sim.timeout(duration)
