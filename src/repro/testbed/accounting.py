"""Post-hoc energy accounting from the prototype's event log.

Exactly the paper's methodology (Section 4.2): the experiment only records
*events*; all joules are computed afterwards from the log and the radios'
published characteristics (Table 1):

* sensor tx/rx events cost ``P_tx × duration`` / ``P_rx × duration`` of the
  CC2420;
* emulated 802.11 wake-ups cost ``e_wakeup_j`` each;
* emulated 802.11 tx/rx events cost ``P_tx/P_rx × duration``;
* emulated 802.11 *idle* is the awake time (wake→sleep intervals) not spent
  transmitting or receiving, charged at ``P_idle``.
"""

from __future__ import annotations

import dataclasses

from repro.energy.radio_specs import RadioSpec
from repro.testbed import eventlog
from repro.testbed.eventlog import EventLog


@dataclasses.dataclass
class EnergyBreakdown:
    """Joules per category for one mote (or both, when summed)."""

    sensor_tx: float = 0.0
    sensor_rx: float = 0.0
    wifi_wakeup: float = 0.0
    wifi_tx: float = 0.0
    wifi_rx: float = 0.0
    wifi_idle: float = 0.0

    @property
    def total(self) -> float:
        """All categories summed."""
        return (
            self.sensor_tx
            + self.sensor_rx
            + self.wifi_wakeup
            + self.wifi_tx
            + self.wifi_rx
            + self.wifi_idle
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            sensor_tx=self.sensor_tx + other.sensor_tx,
            sensor_rx=self.sensor_rx + other.sensor_rx,
            wifi_wakeup=self.wifi_wakeup + other.wifi_wakeup,
            wifi_tx=self.wifi_tx + other.wifi_tx,
            wifi_rx=self.wifi_rx + other.wifi_rx,
            wifi_idle=self.wifi_idle + other.wifi_idle,
        )


def account_mote(
    log: EventLog,
    mote: str,
    sensor_spec: RadioSpec,
    wifi_spec: RadioSpec,
    end_time_s: float,
) -> EnergyBreakdown:
    """Compute one mote's energy from the log.

    ``end_time_s`` closes any wake interval left open at experiment end.
    """
    out = EnergyBreakdown()
    awake_intervals: list[tuple[float, float]] = []
    wake_started: float | None = None
    busy_s = 0.0
    for entry in log.entries:
        if entry.mote != mote:
            continue
        if entry.event == eventlog.SENSOR_TX:
            out.sensor_tx += sensor_spec.p_tx_w * entry.duration_s
        elif entry.event == eventlog.SENSOR_RX:
            out.sensor_rx += sensor_spec.p_rx_w * entry.duration_s
        elif entry.event == eventlog.WIFI_WAKEUP:
            out.wifi_wakeup += wifi_spec.e_wakeup_j
            if wake_started is None:
                wake_started = entry.time_s
        elif entry.event == eventlog.WIFI_SLEEP:
            if wake_started is not None:
                awake_intervals.append((wake_started, entry.time_s))
                wake_started = None
        elif entry.event == eventlog.WIFI_TX:
            out.wifi_tx += wifi_spec.p_tx_w * entry.duration_s
            busy_s += entry.duration_s
        elif entry.event == eventlog.WIFI_RX:
            out.wifi_rx += wifi_spec.p_rx_w * entry.duration_s
            busy_s += entry.duration_s
    if wake_started is not None:
        awake_intervals.append((wake_started, end_time_s))
    awake_s = sum(end - start for start, end in awake_intervals)
    out.wifi_idle = wifi_spec.p_idle_w * max(0.0, awake_s - busy_s)
    return out


def account_experiment(
    log: EventLog,
    sensor_spec: RadioSpec,
    wifi_spec: RadioSpec,
    end_time_s: float,
) -> EnergyBreakdown:
    """Sum both motes' breakdowns."""
    motes = {entry.mote for entry in log.entries}
    total = EnergyBreakdown()
    for mote in sorted(motes):
        total = total + account_mote(log, mote, sensor_spec, wifi_spec, end_time_s)
    return total
