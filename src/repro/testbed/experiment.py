"""The prototype experiment: two motes, one threshold sweep (Figures 11–12).

Setup mirrors Section 4.2: a single sender and a single receiver; BCP's
buffering/handshake/bulk-transfer logic running over the real CC2420 link
and the emulated 802.11 MAC; "each run consists of sending 500 messages";
results average 5 runs per threshold (α·s* may be below 1 — the paper
sweeps ~0.5–5 KB, bounded by the Tmote Sky's RAM).

Both protocols are measured:

* **Dual-radio** — BCP: buffer to the threshold, wake-up handshake over the
  CC2420, burst over the emulated 802.11 radio, radios off in between.
* **Sensor-radio** — the baseline: every message goes immediately over the
  CC2420 (with its MAC-level ACK).

Energy is computed only from the event log (:mod:`~repro.testbed.accounting`),
exactly as the paper did.  The per-packet energy of the dual-radio scheme is
*not monotonic* in the threshold: each extra 1024 B frame needed for a
slightly larger burst adds a header-and-wakeup quantum — the Fig. 11
sawtooth.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.energy.radio_specs import LUCENT_11, RadioSpec
from repro.runner.cache import register_result_type
from repro.sim.simulator import Simulator
from repro.testbed import eventlog
from repro.testbed.accounting import EnergyBreakdown, account_experiment
from repro.testbed.emulation import (
    TMOTE_CC2420,
    WIFI_INTER_FRAME_S,
    EmulatedWifiMac,
    SensorLink,
)
from repro.testbed.eventlog import EventLog

if typing.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.runner.executor import SweepRunner

SENDER = "sender"
RECEIVER = "receiver"


@dataclasses.dataclass
class PrototypeConfig:
    """Parameters of one prototype run.

    Attributes
    ----------
    threshold_bytes:
        The α·s* buffering threshold under test.
    n_messages:
        Messages per run (paper: 500).
    message_bytes:
        Application message payload (32 B, as in the simulations).
    message_interval_s:
        Sensing period of the data source.
    control_bytes:
        WAKEUP / WAKEUP-ACK payload size.
    frame_payload_bytes:
        Emulated 802.11 frame payload (1024 B) — the quantization unit
        behind the Fig. 11 sawtooth.
    sensor_spec / wifi_spec:
        The real CC2420 and the emulated 802.11 radio.
    flush_at_end:
        Send any sub-threshold remainder when generation ends, so every
        run delivers all messages (keeps per-packet energy comparable).
    """

    threshold_bytes: float = 2048.0
    n_messages: int = 500
    message_bytes: int = 32
    message_interval_s: float = 0.35
    control_bytes: int = 16
    frame_payload_bytes: int = 1024
    sensor_spec: RadioSpec = TMOTE_CC2420
    wifi_spec: RadioSpec = LUCENT_11
    flush_at_end: bool = True

    def __post_init__(self) -> None:
        if self.threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        if self.n_messages < 1:
            raise ValueError("need at least one message")
        if self.message_bytes < 1 or self.frame_payload_bytes < self.message_bytes:
            raise ValueError("frame payload must fit at least one message")


@dataclasses.dataclass
class PrototypeResult:
    """Measurements of one run (or the average over runs).

    Energies are per *delivered packet*, the Fig. 11 y-axis.
    """

    threshold_bytes: float
    dual_energy_per_packet_uj: float
    sensor_energy_per_packet_uj: float
    mean_delay_per_packet_ms: float
    messages_delivered: int
    dual_breakdown: EnergyBreakdown
    duration_s: float


def prototype_result_to_dict(result: PrototypeResult) -> dict[str, typing.Any]:
    """Serialize a :class:`PrototypeResult` to plain JSON-encodable data."""
    return dataclasses.asdict(result)


def prototype_result_from_dict(
    data: dict[str, typing.Any]
) -> PrototypeResult:
    """Rebuild a :class:`PrototypeResult`; raises on unknown fields."""
    field_names = {f.name for f in dataclasses.fields(PrototypeResult)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown PrototypeResult fields: {sorted(unknown)}")
    data = dict(data)
    data["dual_breakdown"] = EnergyBreakdown(**data["dual_breakdown"])
    return PrototypeResult(**data)


# Threshold sweeps run through the same runner/cache machinery as the
# simulation matrix: a PrototypeConfig is a pure dataclass, a run is a
# pure function of it, so cached prototype points are sound.
register_result_type(
    PrototypeResult, prototype_result_to_dict, prototype_result_from_dict
)


def _dual_run(config: PrototypeConfig) -> tuple[EventLog, list[float], int, float]:
    """Simulate one BCP run; returns (log, delays, delivered, duration)."""
    sim = Simulator(seed=0)
    log = EventLog()
    sensor_link = SensorLink(sim, log, config.sensor_spec)
    wifi_tx = EmulatedWifiMac(sim, log, SENDER, config.wifi_spec)
    wifi_rx = EmulatedWifiMac(sim, log, RECEIVER, config.wifi_spec)
    delays: list[float] = []
    delivered = 0

    buffered: list[float] = []  # generation timestamps of buffered messages

    def flush_burst() -> typing.Generator:
        """One BCP session: handshake, burst, sleep."""
        nonlocal delivered
        # WAKEUP over the CC2420; the receiver wakes its emulated radio and
        # answers with the WAKEUP-ACK while the radio warms up.
        yield sensor_link.transfer(SENDER, RECEIVER, config.control_bytes, "wakeup")
        wake_rx = wifi_rx.wake()
        yield sensor_link.transfer(RECEIVER, SENDER, config.control_bytes, "ack")
        yield wifi_tx.wake()
        yield wake_rx
        burst_bytes = len(buffered) * config.message_bytes
        n_frames = math.ceil(burst_bytes / config.frame_payload_bytes)
        per_frame = math.ceil(len(buffered) / n_frames)
        index = 0
        for _frame in range(n_frames):
            count = min(per_frame, len(buffered) - index)
            payload = count * config.message_bytes
            yield wifi_tx.transfer_frame(wifi_rx, payload, f"burst[{count}]")
            for offset in range(count):
                delays.append(sim.now - buffered[index + offset])
                log.log(sim.now, RECEIVER, eventlog.MSG_DELIVERED)
            index += count
            delivered += count
            if _frame != n_frames - 1:
                yield sim.timeout(WIFI_INTER_FRAME_S)
        buffered.clear()
        wifi_tx.sleep()
        wifi_rx.sleep()

    def sender_process() -> typing.Generator:
        for _message in range(config.n_messages):
            log.log(sim.now, SENDER, eventlog.MSG_GENERATED)
            buffered.append(sim.now)
            if len(buffered) * config.message_bytes >= config.threshold_bytes:
                yield from flush_burst()
            yield sim.timeout(config.message_interval_s)
        if buffered and config.flush_at_end:
            yield from flush_burst()

    process = sim.process(sender_process(), name="prototype.sender")
    sim.run(until=process)
    return log, delays, delivered, sim.now


def _sensor_baseline_energy_per_packet_j(config: PrototypeConfig) -> float:
    """Per-message CC2420 energy: data frame + MAC-level ACK, both ends."""
    spec = config.sensor_spec
    data_bits = config.message_bytes * 8 + spec.header_bits
    ack_bits = 11 * 8
    link_power = spec.p_tx_w + spec.p_rx_w
    return link_power * (data_bits + ack_bits) / spec.rate_bps


def run_prototype(config: PrototypeConfig) -> PrototypeResult:
    """Run one threshold point of the prototype experiment."""
    log, delays, delivered, duration = _dual_run(config)
    breakdown = account_experiment(
        log, config.sensor_spec, config.wifi_spec, duration
    )
    if delivered == 0:
        raise RuntimeError(
            "prototype run delivered nothing; threshold exceeds the "
            "whole run's data"
        )
    dual_per_packet = breakdown.total / delivered
    sensor_per_packet = _sensor_baseline_energy_per_packet_j(config)
    mean_delay = sum(delays) / len(delays)
    return PrototypeResult(
        threshold_bytes=config.threshold_bytes,
        dual_energy_per_packet_uj=dual_per_packet * 1e6,
        sensor_energy_per_packet_uj=sensor_per_packet * 1e6,
        mean_delay_per_packet_ms=mean_delay * 1e3,
        messages_delivered=delivered,
        dual_breakdown=breakdown,
        duration_s=duration,
    )


def sweep_thresholds(
    thresholds_bytes: typing.Sequence[float],
    base_config: PrototypeConfig | None = None,
    runner: "SweepRunner | None" = None,
) -> list[PrototypeResult]:
    """Run the prototype across a threshold sweep (the Fig. 11/12 x-axis).

    Each threshold point is an independent deterministic run, so the sweep
    accepts a :class:`~repro.runner.SweepRunner` to fan points over worker
    processes, serve them from the on-disk result cache (prototype
    measurements cache exactly like simulation results — a warm cache
    recomputes nothing), or execute one shard of a multi-machine sweep.
    The default serial runner matches in-process execution.
    """
    from repro.runner.executor import SweepRunner

    runner = runner or SweepRunner()
    base = base_config or PrototypeConfig()
    configs = [
        dataclasses.replace(base, threshold_bytes=float(threshold))
        for threshold in thresholds_bytes
    ]
    return runner.map(
        run_prototype,
        configs,
        describe=lambda _i, c: f"prototype threshold={c.threshold_bytes:g}B",
    )


def default_threshold_sweep(
    step_bytes: int = 128, max_bytes: int = 5000
) -> list[float]:
    """The paper's ~0.5–5 KB threshold range at a regular step."""
    return [float(b) for b in range(512, max_bytes + 1, step_bytes)]
