"""Event logging for the prototype experiments (paper Section 4.2).

"All the events (waking up of the emulated IEEE 802.11 radio,
transmission/reception of wakeups, acks, data, etc.) were logged in detail.
At the end of the experiments, these logs were used to calculate energy
consumption and delay."

The testbed follows the same methodology: motes append :class:`LogEntry`
records while the experiment runs, and :mod:`repro.testbed.accounting`
computes all energy numbers *from the log alone* afterwards.
"""

from __future__ import annotations

import dataclasses
import typing

# Event type constants.
SENSOR_TX = "sensor_tx"
SENSOR_RX = "sensor_rx"
WIFI_WAKEUP = "wifi_wakeup"
WIFI_SLEEP = "wifi_sleep"
WIFI_TX = "wifi_tx"
WIFI_RX = "wifi_rx"
MSG_GENERATED = "msg_generated"
MSG_DELIVERED = "msg_delivered"


@dataclasses.dataclass(frozen=True)
class LogEntry:
    """One logged event.

    Attributes
    ----------
    time_s:
        Event timestamp (start of the event for timed events).
    mote:
        Which mote logged it ("sender" / "receiver").
    event:
        One of the module's event-type constants.
    duration_s:
        On-air time for tx/rx events (0 for instantaneous events).
    detail:
        Free-form payload (message ids, byte counts...).
    """

    time_s: float
    mote: str
    event: str
    duration_s: float = 0.0
    detail: typing.Any = None


class EventLog:
    """Append-only experiment log."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def log(
        self,
        time_s: float,
        mote: str,
        event: str,
        duration_s: float = 0.0,
        detail: typing.Any = None,
    ) -> None:
        """Append one entry."""
        self.entries.append(LogEntry(time_s, mote, event, duration_s, detail))

    def of_type(self, event: str, mote: str | None = None) -> list[LogEntry]:
        """All entries of one event type (optionally one mote's)."""
        return [
            entry
            for entry in self.entries
            if entry.event == event and (mote is None or entry.mote == mote)
        ]

    def __len__(self) -> int:
        return len(self.entries)
