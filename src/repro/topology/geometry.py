"""Planar geometry helpers shared by all topology generators."""

from __future__ import annotations

import math
import typing


class Position(typing.NamedTuple):
    """A point in the deployment plane, in meters."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)


#: Tolerance added to range checks so nodes placed exactly at the nominal
#: range (e.g. grid neighbours at 40 m with a 40 m radio) stay connected
#: despite floating-point placement error.
RANGE_EPSILON_M = 1e-6


def in_range(a: Position, b: Position, range_m: float) -> bool:
    """Whether two positions are within ``range_m`` of each other."""
    return a.distance_to(b) <= range_m + RANGE_EPSILON_M
