"""The topology registry: nameable, hashable deployment shapes.

A :class:`TopologySpec` is the declarative form of a deployment — a
registry name plus a sorted tuple of ``(key, value)`` parameters — small
enough to live inside :class:`~repro.models.scenario.ScenarioConfig`, and
made purely of plain data so the runner's config hashing covers it (every
topology variation becomes a distinct, cacheable, shardable sweep cell for
free).

Registered kinds:

``grid``
    The paper's rows × cols lattice (:func:`~repro.topology.layout.grid_layout`).
``line``
    The Section 2.2 string-of-pearls (:func:`~repro.topology.layout.line_layout`).
``uniform-random``
    Uniform placement in a rectangle, optionally resampled until connected.
``clustered``
    Gaussian clusters around uniform cluster heads.
``from-file``
    Explicit positions.  :meth:`TopologySpec.from_file` inlines the file's
    coordinates into the spec so the config hash covers the *positions*,
    not a path whose contents could silently change under the cache.

Randomized topologies draw from the named stream the caller passes
(scenario builds use ``sim.rng.stream("topology.layout")``), so the same
config seed always produces the same deployment.
"""

from __future__ import annotations

import dataclasses
import json
import typing

from repro.registry import ParamSpec, Registry
from repro.topology.layout import (
    Layout,
    clustered_layout,
    grid_layout,
    line_layout,
    random_layout,
)
from repro.topology.geometry import Position


@dataclasses.dataclass(frozen=True)
class TopologySpec(ParamSpec):
    """A named topology plus its parameters, in hashable plain-data form."""

    kind: str = "grid"

    axis = "topology"

    @classmethod
    def from_file(cls, path: str) -> "TopologySpec":
        """An explicit-positions spec read from a JSON layout file.

        Accepted shapes: ``{"positions": {"0": [x, y], ...}}``, a bare
        mapping ``{"0": [x, y], ...}``, or a list ``[[x, y], ...]`` (ids
        assigned 0..n-1).  The coordinates are inlined into the spec, so
        the resulting config hash identifies the actual deployment.
        """
        with open(path) as handle:
            data = json.load(handle)
        if isinstance(data, dict) and "positions" in data:
            data = data["positions"]
        if isinstance(data, dict):
            items = [(int(node), pos) for node, pos in data.items()]
        elif isinstance(data, list):
            items = list(enumerate(data))
        else:
            raise ValueError(f"{path}: expected a JSON mapping or list of positions")
        positions = tuple(
            (node, float(pos[0]), float(pos[1])) for node, pos in sorted(items)
        )
        return cls.of("from-file", positions=positions)


@dataclasses.dataclass(frozen=True)
class TopologyProvider:
    """How to realize one registered topology kind.

    Attributes
    ----------
    build:
        ``(params, rng) -> Layout``.  Deterministic given the rng state.
    node_count:
        ``params -> int`` without building — configs validate sink/sender
        indices before any simulator exists.
    """

    build: typing.Callable[[dict, typing.Any], Layout]
    node_count: typing.Callable[[dict], int]


TOPOLOGIES: Registry[TopologyProvider] = Registry("topology")


def register_topology(
    name: str,
    build: typing.Callable[[dict, typing.Any], Layout],
    node_count: typing.Callable[[dict], int],
    summary: str,
    params: typing.Sequence[str],
) -> None:
    """Register a topology kind under ``name`` (see module docstring)."""
    TOPOLOGIES.register(
        name, TopologyProvider(build, node_count), summary=summary, params=params
    )


def build_layout(spec: TopologySpec, rng: typing.Any = None) -> Layout:
    """Realize ``spec`` into a :class:`Layout` using ``rng`` for randomness."""
    provider = TOPOLOGIES.get(spec.kind)
    try:
        return provider.build(spec.kwargs(), rng)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for topology {spec.kind!r}: {error}"
        ) from None


def topology_node_count(spec: TopologySpec) -> int:
    """Number of nodes ``spec`` deploys, without building the layout."""
    provider = TOPOLOGIES.get(spec.kind)
    try:
        return provider.node_count(spec.kwargs())
    except TypeError as error:
        raise ValueError(
            f"bad parameters for topology {spec.kind!r}: {error}"
        ) from None


# ---------------------------------------------------------------------------
# Built-in kinds.
# ---------------------------------------------------------------------------


def _build_grid(params: dict, rng: typing.Any) -> Layout:
    def build(rows: int = 6, cols: int = 6, spacing_m: float = 40.0) -> Layout:
        return grid_layout(rows, cols, spacing_m)

    return build(**params)


def _grid_count(params: dict) -> int:
    def count(rows: int = 6, cols: int = 6, spacing_m: float = 40.0) -> int:
        return rows * cols

    return count(**params)


def _build_line(params: dict, rng: typing.Any) -> Layout:
    def build(n: int = 6, spacing_m: float = 40.0) -> Layout:
        return line_layout(n, spacing_m)

    return build(**params)


def _line_count(params: dict) -> int:
    def count(n: int = 6, spacing_m: float = 40.0) -> int:
        return n

    return count(**params)


def _build_uniform(params: dict, rng: typing.Any) -> Layout:
    def build(
        n: int = 36,
        width_m: float = 200.0,
        height_m: float = 200.0,
        connect_range_m: float | None = None,
    ) -> Layout:
        return random_layout(
            n, width_m, height_m, rng, connect_range_m=connect_range_m
        )

    return build(**params)


def _uniform_count(params: dict) -> int:
    def count(
        n: int = 36,
        width_m: float = 200.0,
        height_m: float = 200.0,
        connect_range_m: float | None = None,
    ) -> int:
        return n

    return count(**params)


def _build_clustered(params: dict, rng: typing.Any) -> Layout:
    def build(
        n: int = 36,
        width_m: float = 200.0,
        height_m: float = 200.0,
        clusters: int = 3,
        sigma_m: float = 20.0,
        connect_range_m: float | None = None,
    ) -> Layout:
        return clustered_layout(
            n,
            width_m,
            height_m,
            rng,
            clusters=clusters,
            sigma_m=sigma_m,
            connect_range_m=connect_range_m,
        )

    return build(**params)


def _clustered_count(params: dict) -> int:
    def count(
        n: int = 36,
        width_m: float = 200.0,
        height_m: float = 200.0,
        clusters: int = 3,
        sigma_m: float = 20.0,
        connect_range_m: float | None = None,
    ) -> int:
        return n

    return count(**params)


def _build_from_file(params: dict, rng: typing.Any) -> Layout:
    def build(positions: tuple = ()) -> Layout:
        if not positions:
            raise ValueError(
                "from-file needs inline positions; construct the spec with "
                "TopologySpec.from_file(path)"
            )
        ids = sorted(int(node) for node, _x, _y in positions)
        if ids != list(range(len(ids))):
            raise ValueError(
                "from-file node ids must be contiguous 0..n-1 (the scenario "
                f"harness indexes nodes by id); got {ids}"
            )
        return Layout(
            {int(node): Position(float(x), float(y)) for node, x, y in positions}
        )

    return build(**params)


def _from_file_count(params: dict) -> int:
    def count(positions: tuple = ()) -> int:
        return len(positions)

    return count(**params)


register_topology(
    "grid",
    _build_grid,
    _grid_count,
    summary="the paper's rows x cols lattice (Section 4.1)",
    params=("rows=6", "cols=6", "spacing_m=40"),
)
register_topology(
    "line",
    _build_line,
    _line_count,
    summary="nodes on a line (the Section 2.2 multi-hop analysis shape)",
    params=("n=6", "spacing_m=40"),
)
register_topology(
    "uniform-random",
    _build_uniform,
    _uniform_count,
    summary="uniform random placement, optionally resampled until connected",
    params=("n=36", "width_m=200", "height_m=200", "connect_range_m=None"),
)
register_topology(
    "clustered",
    _build_clustered,
    _clustered_count,
    summary="gaussian clusters around uniformly placed cluster heads",
    params=(
        "n=36",
        "width_m=200",
        "height_m=200",
        "clusters=3",
        "sigma_m=20",
        "connect_range_m=None",
    ),
)
register_topology(
    "from-file",
    _build_from_file,
    _from_file_count,
    summary="explicit positions inlined from a JSON file (TopologySpec.from_file)",
    params=("positions=((id, x, y), ...)",),
)
