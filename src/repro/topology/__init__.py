"""Deployment layouts used by the paper's analysis and evaluation."""

from repro.topology.geometry import RANGE_EPSILON_M, Position, in_range
from repro.topology.layout import (
    Layout,
    clustered_layout,
    grid_layout,
    line_layout,
    random_layout,
)
from repro.topology.registry import (
    TOPOLOGIES,
    TopologySpec,
    build_layout,
    topology_node_count,
)

__all__ = [
    "Layout",
    "Position",
    "RANGE_EPSILON_M",
    "TOPOLOGIES",
    "TopologySpec",
    "build_layout",
    "clustered_layout",
    "grid_layout",
    "in_range",
    "line_layout",
    "random_layout",
    "topology_node_count",
]
