"""Deployment layouts used by the paper's analysis and evaluation."""

from repro.topology.geometry import RANGE_EPSILON_M, Position, in_range
from repro.topology.layout import Layout, grid_layout, line_layout, random_layout

__all__ = [
    "Layout",
    "Position",
    "RANGE_EPSILON_M",
    "grid_layout",
    "in_range",
    "line_layout",
    "random_layout",
]
