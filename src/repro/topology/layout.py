"""Node layouts: the paper's grid and line deployments, plus random layouts.

A :class:`Layout` is simply an ordered mapping of integer node ids to
:class:`~repro.topology.geometry.Position`.  Connectivity is *not* stored
here — it is a function of each radio's range — but :meth:`Layout.graph`
materializes the connectivity graph for a given range (used to build routing
tables).
"""

from __future__ import annotations

import typing

import networkx

from repro.topology.geometry import Position, in_range


class Layout:
    """An immutable placement of nodes in the plane.

    Parameters
    ----------
    positions:
        Mapping of node id → position.  Ids need not be contiguous but the
        paper's layouts use ``0..n-1``.
    """

    def __init__(self, positions: typing.Mapping[int, Position]):
        if not positions:
            raise ValueError("a layout needs at least one node")
        self._positions = dict(positions)

    @property
    def node_ids(self) -> list[int]:
        """All node ids in insertion order."""
        return list(self._positions)

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def position(self, node_id: int) -> Position:
        """The position of ``node_id`` (KeyError if absent)."""
        return self._positions[node_id]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in meters."""
        return self._positions[a].distance_to(self._positions[b])

    def neighbors_within(self, node_id: int, range_m: float) -> list[int]:
        """Ids of all *other* nodes within ``range_m`` of ``node_id``."""
        origin = self._positions[node_id]
        return [
            other
            for other, pos in self._positions.items()
            if other != node_id and in_range(origin, pos, range_m)
        ]

    def graph(self, range_m: float) -> "networkx.Graph":
        """Connectivity graph for radios with transmission range ``range_m``.

        Edges carry a ``distance`` attribute in meters.
        """
        g = networkx.Graph()
        g.add_nodes_from(self._positions)
        ids = list(self._positions)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if in_range(self._positions[a], self._positions[b], range_m):
                    g.add_edge(a, b, distance=self.distance(a, b))
        return g


def grid_layout(rows: int = 6, cols: int = 6, spacing_m: float = 40.0) -> Layout:
    """The paper's evaluation layout: a ``rows × cols`` grid.

    Section 4.1 uses a 200×200 m² field with 36 nodes — a 6×6 grid with 40 m
    spacing (the sensor radio range), spanning x, y ∈ [0, 200].  Node ids
    are assigned row-major from the (0, 0) corner; the evaluation scenarios
    place the sink near the center (node 14), see
    :mod:`repro.models.scenario`.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one row and one column")
    positions = {
        row * cols + col: Position(col * spacing_m, row * spacing_m)
        for row in range(rows)
        for col in range(cols)
    }
    return Layout(positions)


def line_layout(n_nodes: int, spacing_m: float = 40.0) -> Layout:
    """The Section 2.2 multi-hop analysis layout: nodes on a line.

    With the default 40 m spacing and six nodes, the endpoints are 200 m
    apart: one Cabletron/Lucent-2 hop, five sensor-radio hops.
    """
    if n_nodes < 2:
        raise ValueError("a line needs at least two nodes")
    return Layout({i: Position(i * spacing_m, 0.0) for i in range(n_nodes)})


def random_layout(
    n_nodes: int,
    width_m: float,
    height_m: float,
    rng: typing.Any,
) -> Layout:
    """Uniform random placement inside a ``width × height`` field.

    Parameters
    ----------
    rng:
        A ``random.Random``-like object (pass a named stream from
        :class:`repro.sim.RngRegistry` for reproducibility).
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    positions = {
        i: Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
        for i in range(n_nodes)
    }
    return Layout(positions)
