"""Node layouts: the paper's grid and line deployments, plus generated ones.

A :class:`Layout` is simply an ordered mapping of integer node ids to
:class:`~repro.topology.geometry.Position`.  Connectivity is *not* stored
here — it is a function of each radio's range — but :meth:`Layout.graph`
materializes the connectivity graph for a given range (used to build routing
tables).

Layouts are immutable once constructed, so derived data (:attr:`Layout.node_ids`,
:meth:`Layout.neighbors_within`) is computed once and served as cached
tuples.  Generator functions cover the paper's deployments (grid, line) and
the scenario-composition axes beyond it (uniform random, clustered); the
registry in :mod:`repro.topology.registry` makes them nameable from configs
and the CLI.
"""

from __future__ import annotations

import typing

import networkx

from repro.topology.geometry import Position, in_range


class Layout:
    """An immutable placement of nodes in the plane.

    Parameters
    ----------
    positions:
        Mapping of node id → position.  Ids need not be contiguous but the
        paper's layouts use ``0..n-1``.
    """

    def __init__(self, positions: typing.Mapping[int, Position]):
        if not positions:
            raise ValueError("a layout needs at least one node")
        self._positions = dict(positions)
        # Layouts are documented immutable: derived views are computed once.
        self._node_ids: tuple[int, ...] = tuple(self._positions)
        self._neighbors_cache: dict[tuple[int, float], tuple[int, ...]] = {}

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All node ids in insertion order (cached tuple)."""
        return self._node_ids

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def position(self, node_id: int) -> Position:
        """The position of ``node_id`` (KeyError if absent)."""
        return self._positions[node_id]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in meters."""
        return self._positions[a].distance_to(self._positions[b])

    def neighbors_within(self, node_id: int, range_m: float) -> tuple[int, ...]:
        """Ids of all *other* nodes within ``range_m`` of ``node_id``.

        Cached per ``(node, range)``: layouts are immutable, so the answer
        never changes after the first computation.
        """
        key = (node_id, range_m)
        cached = self._neighbors_cache.get(key)
        if cached is None:
            origin = self._positions[node_id]
            cached = tuple(
                other
                for other, pos in self._positions.items()
                if other != node_id and in_range(origin, pos, range_m)
            )
            self._neighbors_cache[key] = cached
        return cached

    def graph(self, range_m: float) -> "networkx.Graph":
        """Connectivity graph for radios with transmission range ``range_m``.

        Edges carry a ``distance`` attribute in meters.
        """
        g = networkx.Graph()
        g.add_nodes_from(self._positions)
        ids = list(self._positions)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if in_range(self._positions[a], self._positions[b], range_m):
                    g.add_edge(a, b, distance=self.distance(a, b))
        return g

    def graph_for_ranges(
        self, ranges: typing.Mapping[int, float]
    ) -> "networkx.Graph":
        """Connectivity graph for heterogeneous per-node ranges.

        An edge exists only when the two nodes are within *both* ranges
        (links must be bidirectional to carry a handshake); with a uniform
        range map this reduces exactly to :meth:`graph`.  Nodes missing
        from ``ranges`` are placed in the graph but get no edges (e.g.
        nodes without a high-power radio in a heterogeneous deployment).
        """
        g = networkx.Graph()
        g.add_nodes_from(self._positions)
        ids = [n for n in self._positions if n in ranges]
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                reach = min(ranges[a], ranges[b])
                if in_range(self._positions[a], self._positions[b], reach):
                    g.add_edge(a, b, distance=self.distance(a, b))
        return g


def grid_layout(rows: int = 6, cols: int = 6, spacing_m: float = 40.0) -> Layout:
    """The paper's evaluation layout: a ``rows × cols`` grid.

    Section 4.1 uses a 200×200 m² field with 36 nodes — a 6×6 grid with 40 m
    spacing (the sensor radio range), spanning x, y ∈ [0, 200].  Node ids
    are assigned row-major from the (0, 0) corner; the evaluation scenarios
    place the sink near the center (node 14), see
    :mod:`repro.models.scenario`.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must have at least one row and one column")
    positions = {
        row * cols + col: Position(col * spacing_m, row * spacing_m)
        for row in range(rows)
        for col in range(cols)
    }
    return Layout(positions)


def line_layout(n_nodes: int, spacing_m: float = 40.0) -> Layout:
    """The Section 2.2 multi-hop analysis layout: nodes on a line.

    With the default 40 m spacing and six nodes, the endpoints are 200 m
    apart: one Cabletron/Lucent-2 hop, five sensor-radio hops.
    """
    if n_nodes < 2:
        raise ValueError("a line needs at least two nodes")
    return Layout({i: Position(i * spacing_m, 0.0) for i in range(n_nodes)})


def _connected(layout: Layout, range_m: float) -> bool:
    return networkx.is_connected(layout.graph(range_m))


def _sample_until_connected(
    sample: typing.Callable[[], Layout],
    connect_range_m: float | None,
    max_tries: int,
) -> Layout:
    """Draw layouts until one is connected at ``connect_range_m``.

    Resampling consumes the caller's rng deterministically, so the result
    is still a pure function of the stream state.  ``None`` disables the
    check (a single draw, exactly the historical behaviour).
    """
    if connect_range_m is None:
        return sample()
    for _ in range(max_tries):
        layout = sample()
        if _connected(layout, connect_range_m):
            return layout
    raise ValueError(
        f"no connected layout at range {connect_range_m} m after "
        f"{max_tries} draws; enlarge the range or densify the deployment"
    )


def random_layout(
    n_nodes: int,
    width_m: float,
    height_m: float,
    rng: typing.Any,
    connect_range_m: float | None = None,
    max_tries: int = 200,
) -> Layout:
    """Uniform random placement inside a ``width × height`` field.

    Parameters
    ----------
    rng:
        A ``random.Random``-like object (pass a named stream from
        :class:`repro.sim.RngRegistry` for reproducibility).
    connect_range_m:
        When set, resample (up to ``max_tries`` times, deterministically)
        until the layout's connectivity graph at this range is connected —
        a disconnected deployment cannot deliver to the sink at all, which
        makes it useless as a sweep cell.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")

    def sample() -> Layout:
        return Layout(
            {
                i: Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
                for i in range(n_nodes)
            }
        )

    return _sample_until_connected(sample, connect_range_m, max_tries)


def clustered_layout(
    n_nodes: int,
    width_m: float,
    height_m: float,
    rng: typing.Any,
    clusters: int = 3,
    sigma_m: float = 20.0,
    connect_range_m: float | None = None,
    max_tries: int = 200,
) -> Layout:
    """Gaussian clusters around uniformly placed cluster heads.

    Models patchy real deployments (instrumented habitats, building
    wings): ``clusters`` centers are drawn uniformly in the field, and
    node ``i`` is placed normally (std ``sigma_m``) around center
    ``i % clusters``, clamped to the field.  Deterministic given ``rng``.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if clusters < 1:
        raise ValueError("need at least one cluster")
    if sigma_m < 0:
        raise ValueError("sigma must be non-negative")

    def sample() -> Layout:
        centers = [
            Position(rng.uniform(0.0, width_m), rng.uniform(0.0, height_m))
            for _ in range(clusters)
        ]
        positions = {}
        for i in range(n_nodes):
            center = centers[i % clusters]
            positions[i] = Position(
                min(max(rng.gauss(center.x, sigma_m), 0.0), width_m),
                min(max(rng.gauss(center.y, sigma_m), 0.0), height_m),
            )
        return Layout(positions)

    return _sample_until_connected(sample, connect_range_m, max_tries)
